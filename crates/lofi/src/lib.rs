//! # pokemu-lofi
//!
//! The **Lo-Fi emulator** — the QEMU analogue of the PokeEMU-rs
//! reproduction: a dynamic binary translator for the VX86 guest ISA.
//!
//! Architecture (mirroring QEMU 0.14's, the version the paper tests):
//!
//! * a translator lowers guest instructions to a micro-op IR
//!   ([`uop`], [`translate`]);
//! * translated blocks are cached and invalidated on self-modifying writes
//!   ([`Lofi`]);
//! * hot paths avoid the dispatch loop entirely: direct block chaining, an
//!   inline lookup cache, superblocks, and an IR-skip fast path
//!   ([`fastpath`], DESIGN.md §11) — gated by `POKEMU_LOFI_CHAIN`, and a
//!   pure execution-strategy change (results are byte-identical on/off);
//! * a softmmu with a TLB serves memory accesses through a *fast path that
//!   skips segmentation checks* ([`mmu`]);
//! * EFLAGS are lazy ([`state::CcState`]), materialized on demand;
//! * complex instructions run as out-of-line helpers ([`exec`]).
//!
//! The fidelity gaps the paper's evaluation finds in QEMU (§6.2) are
//! *consequences of this architecture*, reproduced here structurally:
//! missing segment limit/rights enforcement (fast path), non-atomic `leave`
//! and `cmpxchg` (eager micro-op commit), `rdmsr` without the invalid-MSR
//! #GP, reversed `iret` pop order, missing descriptor accessed-bit updates,
//! rejected undocumented encodings, and lazy-flag values for
//! architecturally-undefined flags. Each gap has a fix switch in
//! [`Fidelity`] so the ablation experiment can validate the generated tests
//! against a repaired emulator ("the test programs we have generated can be
//! used again in the future to validate the implementation", §6.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod fastpath;
pub mod mmu;
pub mod state;
pub mod translate;
pub mod uop;

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

use pokemu_isa::snapshot::{Outcome, SegSnapshot, Snapshot};
use pokemu_isa::state::Exception;
use pokemu_rt::metrics;

pub use exec::{Core, TbExit};
pub use state::{Fidelity, LofiMachine};
pub use translate::Tb;

/// Ways in the inline (direct-mapped) TB lookup cache.
const LOOKUP_WAYS: usize = 64;
/// A TB whose execution count reaches this threshold becomes a superblock
/// head candidate (checked again every multiple, so chains that complete
/// late still form).
const SUPERBLOCK_THRESHOLD: u64 = 16;
/// Guest-instruction cap for one superblock.
const SUPERBLOCK_MAX_INSNS: u32 = 64;
/// Chain-edge index for a taken direct branch.
const EDGE_TAKEN: usize = 0;
/// Chain-edge index for a fallthrough / fall-off-the-end successor.
const EDGE_FALL: usize = 1;

/// Why a [`Lofi::run`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// `hlt` retired.
    Halted,
    /// An exception was intercepted.
    Exception(Exception),
    /// The step budget was exhausted.
    StepLimit,
}

impl RunExit {
    /// Converts to the snapshot outcome encoding.
    pub fn outcome(self) -> Outcome {
        match self {
            RunExit::Halted => Outcome::Halted,
            RunExit::Exception(e) => Outcome::Exception {
                vector: e.vector(),
                error: e.error_code(),
            },
            RunExit::StepLimit => Outcome::Timeout,
        }
    }
}

/// Execution statistics (translation-block behavior, for the performance
/// benches). These count *block executions* however they were dispatched,
/// so they are identical with chaining on or off.
#[derive(Debug, Default, Clone, Copy)]
pub struct LofiStats {
    /// Blocks translated.
    pub translations: u64,
    /// Block executions served from the cache (looked up, chained, or run
    /// as a superblock member).
    pub cache_hits: u64,
    /// Blocks invalidated by guest writes.
    pub invalidations: u64,
    /// Guest instructions executed (approximate: per-block counts).
    pub insns: u64,
}

/// Pre-resolved metric handles for the dispatch loop: one relaxed atomic
/// add per event, resolved once at construction (the hot-path idiom the
/// solver and symx engine use). All of these are *counters* — pure
/// functions of the executed programs — so they stay inside the
/// deterministic-replay byte-identity contract.
#[derive(Debug, Clone, Copy)]
struct LofiMetrics {
    /// Dispatches served from the TB cache (inline cache or main map).
    tb_hits: metrics::Counter,
    /// Dispatches that had to translate (cache miss).
    tb_misses: metrics::Counter,
    /// TBs invalidated by guest writes.
    invalidations: metrics::Counter,
    /// Guest instructions executed (per-block counts).
    insns: metrics::Counter,
    /// Block exits that returned to the dispatch loop.
    exit_next: metrics::Counter,
    /// Block exits that transferred directly to a chained successor.
    exit_chained: metrics::Counter,
    /// Block exits via `hlt`.
    exit_halt: metrics::Counter,
    /// Block exits via guest exception.
    exit_fault: metrics::Counter,
    /// `run` calls that returned [`RunExit::Halted`].
    run_halted: metrics::Counter,
    /// `run` calls that returned [`RunExit::Exception`].
    run_exception: metrics::Counter,
    /// `run` calls that exhausted the block budget.
    run_step_limit: metrics::Counter,
    /// Dispatches served by following a chain link (no lookup at all).
    chain_hits: metrics::Counter,
    /// Chain links patched.
    chain_links: metrics::Counter,
    /// Chain links severed by invalidation.
    chain_unlinks: metrics::Counter,
    /// Lookups answered by the inline direct-mapped cache.
    lookup_cache_hits: metrics::Counter,
    /// Lookups that fell through to the main map.
    lookup_cache_misses: metrics::Counter,
    /// Superblocks formed.
    superblocks: metrics::Counter,
    /// Dispatches that ran a superblock instead of its head TB.
    superblock_execs: metrics::Counter,
    /// Dispatches that ran the IR-skip fast path.
    irskip_execs: metrics::Counter,
}

impl LofiMetrics {
    fn new() -> Self {
        LofiMetrics {
            tb_hits: metrics::counter("lofi.tb_lookup.hits"),
            tb_misses: metrics::counter("lofi.tb_lookup.misses"),
            invalidations: metrics::counter("lofi.tb.invalidations"),
            insns: metrics::counter("lofi.insns"),
            exit_next: metrics::counter("lofi.tb_exit.next"),
            exit_chained: metrics::counter("lofi.dispatch.exit.chained"),
            exit_halt: metrics::counter("lofi.tb_exit.halt"),
            exit_fault: metrics::counter("lofi.tb_exit.fault"),
            run_halted: metrics::counter("lofi.run_exit.halted"),
            run_exception: metrics::counter("lofi.run_exit.exception"),
            run_step_limit: metrics::counter("lofi.run_exit.step_limit"),
            chain_hits: metrics::counter("lofi.chain.hits"),
            chain_links: metrics::counter("lofi.chain.links"),
            chain_unlinks: metrics::counter("lofi.chain.unlinks"),
            lookup_cache_hits: metrics::counter("lofi.chain.lookup_cache.hits"),
            lookup_cache_misses: metrics::counter("lofi.chain.lookup_cache.misses"),
            superblocks: metrics::counter("lofi.chain.superblocks"),
            superblock_execs: metrics::counter("lofi.chain.superblock_execs"),
            irskip_execs: metrics::counter("lofi.chain.irskip_execs"),
        }
    }
}

/// Chain override: 0 = use the environment, 1 = forced off, 2 = forced on.
static CHAIN_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Whether new [`Lofi`] instances use the chained execution layer.
/// Defaults to on; `POKEMU_LOFI_CHAIN=0` disables it (pure legacy
/// dispatch), and [`set_chain_enabled`] overrides the environment for
/// in-process equivalence tests.
pub fn chain_enabled() -> bool {
    match CHAIN_OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            static ENV: OnceLock<bool> = OnceLock::new();
            *ENV.get_or_init(|| std::env::var("POKEMU_LOFI_CHAIN").map_or(true, |v| v != "0"))
        }
    }
}

/// Forces the chained execution layer on or off for subsequently created
/// [`Lofi`] instances, overriding `POKEMU_LOFI_CHAIN` (test hook for
/// in-process chain-off/chain-on equivalence runs).
pub fn set_chain_enabled(on: bool) {
    CHAIN_OVERRIDE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Clears any [`set_chain_enabled`] override, restoring the
/// `POKEMU_LOFI_CHAIN` environment default.
pub fn clear_chain_override() {
    CHAIN_OVERRIDE.store(0, Ordering::Relaxed);
}

thread_local! {
    /// Hot-TB scope key for the current thread (0 = default scope).
    static HOT_SCOPE: Cell<u64> = const { Cell::new(0) };
}

/// Process-global per-TB execution counts, merged from each [`Lofi`]
/// instance when it drops, keyed by hot-TB scope then TB entry `eip`.
/// Scoping exists so per-program attribution (conformance runs) does not
/// bleed into the default scope the pipeline dumps for
/// `pokemu-report perf`.
fn hot_registry() -> &'static Mutex<HashMap<u64, HashMap<u32, u64>>> {
    static HOT: OnceLock<Mutex<HashMap<u64, HashMap<u32, u64>>>> = OnceLock::new();
    HOT.get_or_init(Mutex::default)
}

/// RAII guard restoring the previous hot-TB scope on drop; see
/// [`hot_scope`].
#[derive(Debug)]
pub struct HotScope {
    prev: u64,
}

impl Drop for HotScope {
    fn drop(&mut self) {
        HOT_SCOPE.with(|c| c.set(self.prev));
    }
}

/// Enters a hot-TB attribution scope on the current thread: every [`Lofi`]
/// dropped while the guard is alive merges its per-TB execution counts
/// into the table keyed by `key` instead of the default table. The
/// conformance runner scopes each corpus program this way so hot-TB
/// attribution cannot bleed across programs.
pub fn hot_scope(key: u64) -> HotScope {
    let prev = HOT_SCOPE.with(|c| c.replace(key));
    HotScope { prev }
}

fn sorted_hot(table: &HashMap<u32, u64>) -> Vec<(u32, u64)> {
    let mut v: Vec<(u32, u64)> = table.iter().map(|(&eip, &n)| (eip, n)).collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

/// Per-TB execution counts accumulated in the current thread's hot-TB
/// scope (the default scope unless inside [`hot_scope`]), hottest first
/// (count descending, entry `eip` ascending on ties, so the order is
/// deterministic for deterministic workloads). Instances still alive have
/// not merged yet — [`Lofi::run`] data lands here on drop. Chained,
/// superblock, and IR-skip executions are all billed, so attribution
/// matches the legacy dispatch loop.
pub fn hot_tbs() -> Vec<(u32, u64)> {
    let key = HOT_SCOPE.with(|c| c.get());
    hot_tbs_in(key)
}

/// Per-TB execution counts for an explicit hot-TB scope key.
pub fn hot_tbs_in(key: u64) -> Vec<(u32, u64)> {
    let reg = hot_registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.get(&key).map(|t| sorted_hot(t)).unwrap_or_default()
}

/// Clears the hot-TB table, all scopes (bench/test hook for delta
/// measurements).
pub fn reset_hot_tbs() {
    hot_registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

/// One arena slot: a translated block plus its chaining state. Slots are
/// append-only; invalidation marks them dead and severs links, so patched
/// chain edges (plain `usize` indices) can never dangle.
#[derive(Debug)]
struct TbSlot {
    tb: Tb,
    /// IR-skip form, when the block is eligible (chain mode only).
    fast: Option<fastpath::FastBlock>,
    /// Chained successors: `[taken, fallthrough]`.
    links: [Option<usize>; 2],
    /// Incoming chain edges `(pred slot, edge)` to sever on invalidation.
    preds: Vec<(usize, usize)>,
    /// Executions of this block (plain, chained, or as a superblock
    /// member), merged into the hot-TB registry on drop.
    execs: u64,
    /// For plain TBs: the superblock headed here, if formed.
    superblock: Option<usize>,
    /// For superblock slots: the head TB slot.
    super_head: Option<usize>,
    /// For superblock slots: constituent TB slots in order.
    members: Vec<usize>,
    /// Superblock formation was attempted and is structurally impossible.
    super_tried: bool,
    dead: bool,
}

impl TbSlot {
    fn plain(tb: Tb, fast: Option<fastpath::FastBlock>) -> Self {
        TbSlot {
            tb,
            fast,
            links: [None; 2],
            preds: Vec::new(),
            execs: 0,
            superblock: None,
            super_head: None,
            members: Vec::new(),
            super_tried: false,
            dead: false,
        }
    }
}

/// The Lo-Fi dynamic binary translator.
///
/// # Examples
///
/// ```
/// use pokemu_lofi::{Fidelity, Lofi};
///
/// let mut emu = Lofi::new(Fidelity::QEMU_LIKE);
/// // Zero-filled RAM decodes as `add [eax], al`; with no segment checks on
/// // the fast path, the Lo-Fi emulator happily churns through it until the
/// // block budget runs out — the Hi-Fi emulator would fault the fetch.
/// let exit = emu.run(16);
/// assert_eq!(exit, pokemu_lofi::RunExit::StepLimit);
/// ```
#[derive(Debug)]
pub struct Lofi {
    core: Core,
    /// Append-only TB arena (plain blocks and superblocks).
    slots: Vec<TbSlot>,
    /// Entry EIP → live plain slot.
    index: HashMap<u32, usize>,
    /// Virtual page → slots whose guest bytes overlap it.
    tbs_by_page: HashMap<u32, Vec<usize>>,
    /// Inline direct-mapped lookup cache, probed before `index`.
    lookup_cache: [Option<(u32, usize)>; LOOKUP_WAYS],
    stats: LofiStats,
    metrics: LofiMetrics,
    /// Chained execution layer on? Captured from [`chain_enabled`] at
    /// construction.
    chain: bool,
    /// Persistent scratch for IR-skip temps; never cleared between blocks
    /// ([`fastpath::compile`] proves reads are dominated by writes).
    temps: Box<[u32; 256]>,
    /// Maximum guest instructions per translation block.
    pub max_tb_insns: u32,
}

impl Drop for Lofi {
    fn drop(&mut self) {
        let mut merged: HashMap<u32, u64> = HashMap::new();
        for s in &self.slots {
            // Superblock slots bill their members, never themselves.
            if s.execs > 0 && s.super_head.is_none() {
                *merged.entry(s.tb.start).or_default() += s.execs;
            }
        }
        if merged.is_empty() {
            return;
        }
        let key = HOT_SCOPE.with(|c| c.get());
        let mut reg = hot_registry().lock().unwrap_or_else(|e| e.into_inner());
        let table = reg.entry(key).or_default();
        for (eip, n) in merged {
            *table.entry(eip).or_default() += n;
        }
    }
}

impl Default for Lofi {
    fn default() -> Self {
        Self::new(Fidelity::QEMU_LIKE)
    }
}

impl Lofi {
    /// Creates an emulator with the given fidelity profile.
    pub fn new(fid: Fidelity) -> Self {
        Lofi {
            core: Core::new(fid),
            slots: Vec::new(),
            index: HashMap::new(),
            tbs_by_page: HashMap::new(),
            lookup_cache: [None; LOOKUP_WAYS],
            stats: LofiStats::default(),
            metrics: LofiMetrics::new(),
            chain: chain_enabled(),
            temps: Box::new([0; 256]),
            max_tb_insns: 8,
        }
    }

    /// Forces the chained execution layer on or off for this instance
    /// (equivalence tests). Call before the first [`Lofi::run`].
    pub fn set_chain(&mut self, on: bool) {
        self.chain = on;
    }

    /// Whether this instance uses the chained execution layer.
    pub fn chain(&self) -> bool {
        self.chain
    }

    /// The guest machine state.
    pub fn machine(&self) -> &LofiMachine {
        &self.core.m
    }

    /// Mutable guest machine state (baseline initialization).
    pub fn machine_mut(&mut self) -> &mut LofiMachine {
        &mut self.core.m
    }

    /// Loads raw bytes into guest RAM.
    pub fn load_image(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            let a = (addr as usize + i) % self.core.m.ram.len();
            self.core.m.ram[a] = b;
        }
    }

    /// Sets the instruction pointer.
    pub fn set_eip(&mut self, eip: u32) {
        self.core.m.eip = eip;
    }

    /// Execution statistics.
    pub fn stats(&self) -> LofiStats {
        self.stats
    }

    /// Per-TB execution counts for this instance (not yet merged into the
    /// global hot-TB registry), hottest first with the [`hot_tbs`] order.
    pub fn tb_exec_counts(&self) -> Vec<(u32, u64)> {
        let mut merged: HashMap<u32, u64> = HashMap::new();
        for s in &self.slots {
            if s.execs > 0 && s.super_head.is_none() {
                *merged.entry(s.tb.start).or_default() += s.execs;
            }
        }
        sorted_hot(&merged)
    }

    fn way(eip: u32) -> usize {
        (((eip >> 6) ^ eip) as usize) & (LOOKUP_WAYS - 1)
    }

    /// Looks up a live block for `eip`, billing `lofi.tb_lookup.*` (and,
    /// in chain mode, the inline-cache split).
    fn lookup(&mut self, eip: u32) -> Option<usize> {
        if self.chain {
            let w = Self::way(eip);
            if let Some((e, i)) = self.lookup_cache[w] {
                if e == eip && !self.slots[i].dead {
                    self.stats.cache_hits += 1;
                    self.metrics.tb_hits.inc();
                    self.metrics.lookup_cache_hits.inc();
                    return Some(i);
                }
            }
            if let Some(&i) = self.index.get(&eip) {
                self.stats.cache_hits += 1;
                self.metrics.tb_hits.inc();
                self.metrics.lookup_cache_misses.inc();
                self.lookup_cache[w] = Some((eip, i));
                return Some(i);
            }
            None
        } else if let Some(&i) = self.index.get(&eip) {
            self.stats.cache_hits += 1;
            self.metrics.tb_hits.inc();
            Some(i)
        } else {
            None
        }
    }

    /// Translates the block at `eip` into a fresh arena slot.
    fn translate_at(&mut self, eip: u32) -> Result<usize, Exception> {
        self.metrics.tb_misses.inc();
        let tb = translate::translate_block(
            &mut self.core.m,
            &mut self.core.tlb,
            &self.core.fid,
            eip,
            self.max_tb_insns,
        )?;
        self.stats.translations += 1;
        let idx = self.slots.len();
        for page in (tb.start >> 12)..=(tb.end.wrapping_sub(1) >> 12) {
            self.tbs_by_page.entry(page).or_default().push(idx);
        }
        let fast = if self.chain {
            fastpath::compile(&tb)
        } else {
            None
        };
        self.slots.push(TbSlot::plain(tb, fast));
        self.index.insert(eip, idx);
        if self.chain {
            self.lookup_cache[Self::way(eip)] = Some((eip, idx));
        }
        Ok(idx)
    }

    /// Marks a slot dead: removes it from the index and inline cache,
    /// severs incoming chain links, and drops any superblock built on it.
    fn kill_slot(&mut self, i: usize) {
        if self.slots[i].dead {
            return;
        }
        self.slots[i].dead = true;
        if self.slots[i].super_head.is_none() {
            // Plain TB: counted exactly as the legacy dispatch loop did,
            // so `LofiStats` stays identical with chaining on or off.
            self.stats.invalidations += 1;
            let start = self.slots[i].tb.start;
            if self.index.get(&start) == Some(&i) {
                self.index.remove(&start);
            }
            for w in self.lookup_cache.iter_mut() {
                if matches!(w, Some((_, s)) if *s == i) {
                    *w = None;
                }
            }
        }
        let preds = std::mem::take(&mut self.slots[i].preds);
        for (p, edge) in preds {
            if !self.slots[p].dead && self.slots[p].links[edge] == Some(i) {
                self.slots[p].links[edge] = None;
                self.metrics.chain_unlinks.inc();
            }
        }
        self.slots[i].links = [None; 2];
        if let Some(h) = self.slots[i].super_head {
            if self.slots[h].superblock == Some(i) {
                self.slots[h].superblock = None;
            }
        }
        if let Some(sb) = self.slots[i].superblock.take() {
            self.kill_slot(sb);
        }
    }

    fn invalidate_dirty(&mut self) {
        if self.core.dirty_pages.is_empty() {
            return;
        }
        let pages = std::mem::take(&mut self.core.dirty_pages);
        for p in pages {
            if let Some(idxs) = self.tbs_by_page.remove(&p) {
                for i in idxs {
                    self.kill_slot(i);
                }
            }
        }
    }

    /// Follows (patching if needed) the chain link for `edge` out of
    /// `from` toward static successor `next`. Returns the successor slot
    /// when the transfer can skip the dispatch lookup entirely.
    fn chain_edge(&mut self, from: usize, edge: usize, next: u32) -> Option<usize> {
        if self.slots[from].dead {
            // The block invalidated itself (or a superblock member did);
            // never patch edges out of a dead slot.
            return None;
        }
        if let Some(succ) = self.slots[from].links[edge] {
            if !self.slots[succ].dead {
                debug_assert_eq!(self.slots[succ].tb.start, next);
                return Some(succ);
            }
            self.slots[from].links[edge] = None;
        }
        let succ = *self.index.get(&next)?;
        self.slots[from].links[edge] = Some(succ);
        self.slots[succ].preds.push((from, edge));
        self.metrics.chain_links.inc();
        Some(succ)
    }

    /// Considers forming a superblock headed at `head` once its execution
    /// count (including the dispatch in flight) reaches a multiple of
    /// [`SUPERBLOCK_THRESHOLD`]: stitches the hot straight-line
    /// fall-through chain into one µop run. Only fall-off-the-end blocks
    /// extend the chain (the concatenation then needs no terminator
    /// surgery, so coverage and fault semantics are exactly those of the
    /// member sequence), and no non-final member may write guest memory
    /// (a store could rewrite a later member's bytes mid-superblock).
    fn maybe_form_superblock(&mut self, head: usize) {
        {
            let s = &self.slots[head];
            if s.dead || s.super_tried || s.superblock.is_some() || s.super_head.is_some() {
                return;
            }
            let execs = s.execs + 1;
            if execs < SUPERBLOCK_THRESHOLD || execs % SUPERBLOCK_THRESHOLD != 0 {
                return;
            }
            if !s.tb.falls_through() || s.tb.may_write_memory() {
                self.slots[head].super_tried = true;
                return;
            }
        }
        let mut members = vec![head];
        let mut insns = self.slots[head].tb.insns;
        loop {
            let last = *members.last().expect("members is never empty");
            if !self.slots[last].tb.falls_through() || self.slots[last].tb.may_write_memory() {
                break;
            }
            let next = self.slots[last].tb.end;
            let Some(&succ) = self.index.get(&next) else {
                // Successor not translated yet — retry at the next
                // threshold multiple rather than giving up for good.
                break;
            };
            if members.contains(&succ)
                || self.slots[succ].dead
                || insns + self.slots[succ].tb.insns > SUPERBLOCK_MAX_INSNS
            {
                break;
            }
            insns += self.slots[succ].tb.insns;
            members.push(succ);
        }
        if members.len() < 2 {
            return;
        }
        let mut uops = Vec::new();
        for &m in &members {
            uops.extend_from_slice(&self.slots[m].tb.uops);
        }
        let start = self.slots[head].tb.start;
        let end = self.slots[*members.last().expect("non-empty")].tb.end;
        let tb = Tb {
            start,
            end,
            uops,
            insns,
        };
        let fast = fastpath::compile(&tb);
        let sb = self.slots.len();
        // Register on every member's page range so a write to any member's
        // bytes kills the superblock along with the member.
        for &m in &members {
            let (s, e) = (self.slots[m].tb.start, self.slots[m].tb.end);
            for page in (s >> 12)..=(e.wrapping_sub(1) >> 12) {
                self.tbs_by_page.entry(page).or_default().push(sb);
            }
        }
        let mut slot = TbSlot::plain(tb, fast);
        slot.super_head = Some(head);
        slot.members = members;
        slot.super_tried = true;
        self.slots.push(slot);
        self.slots[head].superblock = Some(sb);
        self.slots[head].super_tried = true;
        self.metrics.superblocks.inc();
    }

    /// Runs until halt, exception, or the block budget expires.
    pub fn run(&mut self, max_blocks: u64) -> RunExit {
        let mut budget = max_blocks;
        // Slot to dispatch next via a followed chain link (skips lookup).
        let mut chained: Option<usize> = None;
        // Per-block counter deltas, accumulated locally and flushed once
        // per `run` exit: one relaxed RMW per counter per run instead of
        // per dispatched block.
        #[derive(Default)]
        struct Pending {
            chain_hits: u64,
            insns: u64,
            irskip: u64,
            superblocks: u64,
            exit_next: u64,
            exit_chained: u64,
        }
        fn flush(m: &LofiMetrics, p: &Pending) {
            for (c, n) in [
                (&m.chain_hits, p.chain_hits),
                (&m.insns, p.insns),
                (&m.irskip_execs, p.irskip),
                (&m.superblock_execs, p.superblocks),
                (&m.exit_next, p.exit_next),
                (&m.exit_chained, p.exit_chained),
            ] {
                if n > 0 {
                    c.add(n);
                }
            }
        }
        let mut p = Pending::default();
        while budget > 0 {
            let idx = match chained.take() {
                Some(i) => {
                    self.stats.cache_hits += 1;
                    p.chain_hits += 1;
                    i
                }
                None => {
                    let eip = self.core.m.eip;
                    match self.lookup(eip) {
                        Some(i) => i,
                        None => match self.translate_at(eip) {
                            Ok(i) => i,
                            Err(e) => {
                                flush(&self.metrics, &p);
                                self.metrics.run_exception.inc();
                                return RunExit::Exception(e);
                            }
                        },
                    }
                }
            };
            if self.chain {
                self.maybe_form_superblock(idx);
            }
            // Upgrade to the superblock when one exists and the remaining
            // budget covers all members (each member consumes one block of
            // budget, exactly as the legacy loop would charge them).
            let (exec_idx, blocks) = match self.slots[idx].superblock {
                Some(sb) if self.chain && (self.slots[sb].members.len() as u64) <= budget => {
                    (sb, self.slots[sb].members.len() as u64)
                }
                _ => (idx, 1),
            };
            budget -= blocks;
            let tb_insns = self.slots[exec_idx].tb.insns as u64;
            self.stats.insns += tb_insns;
            p.insns += tb_insns;
            if exec_idx == idx {
                self.slots[idx].execs += 1;
            } else {
                p.superblocks += 1;
                // Members beyond the head were all dispatched from the
                // cache; bill each member's execution for attribution.
                self.stats.cache_hits += blocks - 1;
                for k in 0..blocks as usize {
                    let m = self.slots[exec_idx].members[k];
                    self.slots[m].execs += 1;
                }
            }
            let exit = match (self.chain, &self.slots[exec_idx].fast) {
                (true, Some(fb)) => {
                    p.irskip += 1;
                    fastpath::exec_fast(&mut self.core, &mut self.temps, fb)
                }
                _ => exec::exec_tb(&mut self.core, &self.slots[exec_idx].tb),
            };
            let invalidated_before = self.stats.invalidations;
            self.invalidate_dirty();
            if self.stats.invalidations != invalidated_before {
                self.metrics
                    .invalidations
                    .add(self.stats.invalidations - invalidated_before);
            }
            match exit {
                TbExit::Next(next) => {
                    p.exit_next += 1;
                    self.core.m.eip = next;
                }
                TbExit::Taken(next) | TbExit::Fallthrough(next) => {
                    self.core.m.eip = next;
                    if self.chain {
                        let edge = if matches!(exit, TbExit::Taken(_)) {
                            EDGE_TAKEN
                        } else {
                            EDGE_FALL
                        };
                        if let Some(succ) = self.chain_edge(exec_idx, edge, next) {
                            p.exit_chained += 1;
                            chained = Some(succ);
                            continue;
                        }
                    }
                    p.exit_next += 1;
                }
                TbExit::Halt => {
                    flush(&self.metrics, &p);
                    self.metrics.exit_halt.inc();
                    self.metrics.run_halted.inc();
                    return RunExit::Halted;
                }
                TbExit::Fault(e) => {
                    flush(&self.metrics, &p);
                    self.metrics.exit_fault.inc();
                    self.metrics.run_exception.inc();
                    return RunExit::Exception(e);
                }
            }
        }
        flush(&self.metrics, &p);
        self.metrics.run_step_limit.inc();
        RunExit::StepLimit
    }

    /// Snapshots the guest into the common comparison format (§5.1).
    pub fn snapshot(&self, exit: RunExit) -> Snapshot {
        let m = &self.core.m;
        let mut segs = [SegSnapshot {
            selector: 0,
            base: 0,
            limit: 0,
            attrs: 0,
        }; 6];
        for (i, s) in m.segs.iter().enumerate() {
            segs[i] = SegSnapshot {
                selector: s.selector,
                base: s.base,
                limit: s.limit,
                attrs: s.attrs,
            };
        }
        // Guest RAM is one flat allocation that is almost entirely zero;
        // skip it a word at a time and only byte-scan words with content
        // (the reference target snapshots sparsely via `iter_initialized`,
        // so a byte-granular scan here would bill multi-millisecond costs
        // to the Lo-Fi side alone).
        let mut mem = std::collections::BTreeMap::new();
        const CHUNK: usize = 4096;
        let chunks = m.ram.chunks_exact(CHUNK);
        let tail_start = m.ram.len() - chunks.remainder().len();
        for (ci, chunk) in chunks.enumerate() {
            // OR-reduce the whole chunk first (vectorizes to a handful of
            // wide loads); only chunks with content get the byte scan.
            let any = chunk.chunks_exact(8).fold(0u64, |acc, w| {
                acc | u64::from_ne_bytes(w.try_into().expect("8-byte chunk"))
            });
            if any == 0 {
                continue;
            }
            for (j, &b) in chunk.iter().enumerate() {
                if b != 0 {
                    mem.insert((ci * CHUNK + j) as u32, b);
                }
            }
        }
        for (j, &b) in m.ram[tail_start..].iter().enumerate() {
            if b != 0 {
                mem.insert((tail_start + j) as u32, b);
            }
        }
        Snapshot {
            gpr: m.gpr,
            eip: m.eip,
            eflags: m.eflags(),
            segs,
            cr0: m.cr0,
            cr2: m.cr2,
            cr3: m.cr3,
            cr4: m.cr4,
            gdtr: m.gdtr,
            idtr: m.idtr,
            mem,
            outcome: exit.outcome(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pokemu_isa::state::{attrs, cr0};

    fn flat(emu: &mut Lofi) {
        let m = emu.machine_mut();
        m.cr0 = 1 << cr0::PE;
        for i in 0..6 {
            let typ: u16 = if i == 1 { 0xb } else { 0x3 };
            m.segs[i] = state::LofiSeg {
                selector: ((i as u16) + 1) << 3,
                base: 0,
                limit: 0xffff_ffff,
                attrs: typ
                    | (1 << attrs::S as u16)
                    | (1 << attrs::P as u16)
                    | (1 << attrs::DB as u16),
            };
        }
        m.gpr[4] = 0x7000;
        m.eip = 0x1000;
    }

    #[test]
    fn basic_arithmetic_runs() {
        let mut emu = Lofi::new(Fidelity::QEMU_LIKE);
        flat(&mut emu);
        // mov eax, 41; add eax, 1; hlt
        emu.load_image(0x1000, &[0xb8, 41, 0, 0, 0, 0x83, 0xc0, 0x01, 0xf4]);
        let exit = emu.run(16);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(emu.machine().gpr[0], 42);
    }

    #[test]
    fn tb_cache_hits_on_reexecution() {
        let mut emu = Lofi::new(Fidelity::QEMU_LIKE);
        flat(&mut emu);
        // A small loop: mov ecx, 5; L: dec ecx; jnz L; hlt
        emu.load_image(0x1000, &[0xb9, 5, 0, 0, 0, 0x49, 0x75, 0xfd, 0xf4]);
        let exit = emu.run(64);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(emu.machine().gpr[1], 0);
        assert!(emu.stats().cache_hits >= 3, "loop body must be cached");
    }

    #[test]
    fn dispatch_loop_attribution_counters_and_hot_tbs() {
        let before = pokemu_rt::metrics::snapshot();
        let loop_head = 0x1005u32;
        // An isolated scope keeps concurrently running tests (which share
        // the process-global registry) out of this test's assertions.
        let _scope = hot_scope(0x41545452);
        {
            let mut emu = Lofi::new(Fidelity::QEMU_LIKE);
            flat(&mut emu);
            // mov ecx, 5; L: dec ecx; jnz L; hlt — the loop body re-enters
            // the same TB, so lookups hit and the TB gets hot.
            emu.load_image(0x1000, &[0xb9, 5, 0, 0, 0, 0x49, 0x75, 0xfd, 0xf4]);
            assert_eq!(emu.run(64), RunExit::Halted);
            let local = emu.tb_exec_counts();
            let loop_execs = local
                .iter()
                .find(|&&(eip, _)| eip == loop_head)
                .map(|&(_, n)| n)
                .unwrap_or(0);
            assert!(
                loop_execs >= 4,
                "loop TB must dominate execution: {local:?}"
            );
        } // drop merges into the scoped hot table
        let delta = pokemu_rt::metrics::snapshot().since(&before);
        // Other tests run concurrently against the same process-global
        // counters, so these are floors, not exact counts.
        assert!(delta.counter("lofi.tb_lookup.hits") + delta.counter("lofi.chain.hits") >= 3);
        assert!(delta.counter("lofi.tb_lookup.misses") >= 2);
        assert!(delta.counter("lofi.tb_exit.halt") >= 1);
        assert!(delta.counter("lofi.run_exit.halted") >= 1);
        assert!(delta.counter("lofi.insns") >= 10);
        let hot = hot_tbs();
        let loop_count = hot
            .iter()
            .find(|&&(eip, _)| eip == loop_head)
            .map(|&(_, n)| n)
            .unwrap_or(0);
        assert!(
            loop_count >= 4,
            "dropped instance must merge its TB counts: {hot:?}"
        );
    }

    #[test]
    fn self_modifying_code_invalidates() {
        let mut emu = Lofi::new(Fidelity::QEMU_LIKE);
        flat(&mut emu);
        // mov byte [0x1100], 0x42 ; jmp 0x1100 — the target page was
        // translated already by the first block, then written.
        // At 0x1100: initially hlt (0xf4); overwritten with inc edx (0x42).
        emu.load_image(
            0x1000,
            &[
                0xc6, 0x05, 0x00, 0x11, 0x00, 0x00, 0x42, 0xe9, 0xf4, 0x00, 0x00, 0x00,
            ],
        );
        emu.load_image(0x1100, &[0xf4, 0xf4]);
        let exit = emu.run(16);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(
            emu.machine().gpr[2],
            1,
            "must execute the rewritten inc edx"
        );
    }

    /// The chain-unlink program: a loop whose body chains A→B, then a
    /// one-shot store block rewrites B's first byte (`inc eax` →
    /// `inc edx`) and jumps straight to it. Returns the loaded emulator,
    /// ready to run. ecx counts 5 iterations; the store fires when
    /// ecx == 2.
    fn load_unlink_program(emu: &mut Lofi) {
        flat(emu);
        emu.load_image(
            0x1000,
            &[
                0x49, // 0x1000 L:  dec ecx
                0x74, 0x2d, // 0x1001     jz  0x1030 (E)
                0x83, 0xf9, 0x02, // 0x1003     cmp ecx, 2
                0x75, 0x38, // 0x1006     jne 0x1040 (A)
                0xc6, 0x05, 0x00, 0x11, 0x00, 0x00,
                0x42, // 0x1008     mov byte [0x1100], 0x42
                0xe9, 0xec, 0x00, 0x00, 0x00, // 0x100f     jmp 0x1100 (B)
            ],
        );
        emu.load_image(0x1030, &[0xf4]); // E: hlt
        emu.load_image(0x1040, &[0xe9, 0xbb, 0x00, 0x00, 0x00]); // A: jmp B
        emu.load_image(0x1100, &[0x40, 0xe9, 0xfa, 0xfe, 0xff, 0xff]); // B: inc eax; jmp L
        emu.machine_mut().gpr[1] = 5; // ecx
    }

    #[test]
    fn store_into_chained_successor_unlinks_and_retranslates() {
        let before = pokemu_rt::metrics::snapshot();
        let mut emu = Lofi::new(Fidelity::QEMU_LIKE);
        emu.set_chain(true);
        load_unlink_program(&mut emu);
        let exit = emu.run(256);
        assert_eq!(exit, RunExit::Halted);
        // Iterations with ecx 5,4 run B as `inc eax` (and the second pass
        // patches the A→B chain link); the store fires when dec reaches
        // ecx == 2, so that pass and the next must see the rewritten
        // `inc edx`. Stale-chain bugs would keep executing `inc eax`.
        assert_eq!(emu.machine().gpr[0], 2, "pre-rewrite B executions");
        assert_eq!(emu.machine().gpr[2], 2, "must run the rewritten B");
        let delta = pokemu_rt::metrics::snapshot().since(&before);
        assert!(
            delta.counter("lofi.chain.unlinks") >= 1,
            "invalidating a chained successor must sever the link"
        );
        assert!(delta.counter("lofi.chain.links") >= 1);
        assert!(delta.counter("lofi.dispatch.exit.chained") >= 1);
    }

    #[test]
    fn chain_off_and_on_produce_identical_snapshots() {
        let mut results = Vec::new();
        for on in [false, true] {
            let mut emu = Lofi::new(Fidelity::QEMU_LIKE);
            emu.set_chain(on);
            load_unlink_program(&mut emu);
            let exit = emu.run(256);
            results.push((emu.snapshot(exit), emu.stats().insns));
        }
        assert_eq!(
            results[0].0, results[1].0,
            "chaining must be a pure execution-strategy change"
        );
        assert_eq!(results[0].1, results[1].1, "per-block insn accounting");
    }

    #[test]
    fn inline_lookup_cache_hits_on_run_reentry() {
        let before = pokemu_rt::metrics::snapshot();
        let mut emu = Lofi::new(Fidelity::QEMU_LIKE);
        emu.set_chain(true);
        flat(&mut emu);
        // inc eax; hlt — the second run() re-enters an already-translated
        // EIP from outside any chain, which is exactly the inline-cache
        // dispatch path (translation seeds the cache way).
        emu.load_image(0x1000, &[0x40, 0xf4]);
        assert_eq!(emu.run(16), RunExit::Halted);
        let translations = emu.stats().translations;
        emu.machine_mut().eip = 0x1000;
        assert_eq!(emu.run(16), RunExit::Halted);
        assert_eq!(emu.machine().gpr[0], 2);
        assert_eq!(
            emu.stats().translations,
            translations,
            "re-entry must reuse the cached TB, not retranslate"
        );
        // Other tests share the process-global counters, so a floor.
        let delta = pokemu_rt::metrics::snapshot().since(&before);
        assert!(
            delta.counter("lofi.chain.lookup_cache.hits") >= 1,
            "re-entry dispatch must hit the inline lookup cache"
        );
    }

    #[test]
    fn superblock_forms_on_hot_straight_line_chain_and_bills_members() {
        let before = pokemu_rt::metrics::snapshot();
        let mut emu = Lofi::new(Fidelity::QEMU_LIKE);
        emu.set_chain(true);
        flat(&mut emu);
        // mov ecx, 40; L: 16 × inc eax; dec ecx; jnz L; hlt — the loop
        // body spans three TBs (max_tb_insns = 8): two fall-through runs
        // of incs and the dec/jnz tail, a textbook superblock chain.
        let mut prog = vec![0xb9, 40, 0, 0, 0];
        prog.extend(std::iter::repeat(0x40).take(16));
        prog.extend_from_slice(&[0x49, 0x75, 0xed, 0xf4]);
        emu.load_image(0x1000, &prog);
        let exit = emu.run(512);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(emu.machine().gpr[0], 640, "16 incs × 40 iterations");
        assert_eq!(emu.machine().gpr[1], 0);
        let delta = pokemu_rt::metrics::snapshot().since(&before);
        assert!(delta.counter("lofi.chain.superblocks") >= 1, "must form");
        assert!(
            delta.counter("lofi.chain.superblock_execs") >= 10,
            "hot iterations must dispatch the superblock"
        );
        assert!(
            delta.counter("lofi.chain.irskip_execs") >= 10,
            "an all-ALU superblock must take the IR-skip fast path"
        );
        // Member attribution: every loop-body TB is billed per iteration,
        // whether it ran standalone or inside the superblock.
        let counts = emu.tb_exec_counts();
        let execs = |eip: u32| {
            counts
                .iter()
                .find(|&&(e, _)| e == eip)
                .map(|&(_, n)| n)
                .unwrap_or(0)
        };
        // Loop head after the first pass is the jnz target 0x1005.
        assert_eq!(execs(0x1005), 39, "head TB billed for every iteration");
        assert_eq!(execs(0x100d), 39, "middle member billed");
        assert_eq!(execs(0x1015), 39, "tail member billed");
    }

    #[test]
    fn superblock_equivalence_with_chain_off() {
        let mut snaps = Vec::new();
        for on in [false, true] {
            let mut emu = Lofi::new(Fidelity::QEMU_LIKE);
            emu.set_chain(on);
            flat(&mut emu);
            let mut prog = vec![0xb9, 40, 0, 0, 0];
            prog.extend(std::iter::repeat(0x40).take(16));
            prog.extend_from_slice(&[0x49, 0x75, 0xed, 0xf4]);
            emu.load_image(0x1000, &prog);
            let exit = emu.run(512);
            snaps.push((emu.snapshot(exit), emu.stats().insns));
        }
        assert_eq!(snaps[0], snaps[1]);
    }

    #[test]
    fn step_budget_is_charged_identically_with_chaining() {
        // A tight infinite loop: budget exhaustion must happen after the
        // same number of block executions (and leave the same EIP) with
        // chaining on or off — superblock members each consume budget.
        for budget in [1u64, 7, 16, 33] {
            let mut states = Vec::new();
            for on in [false, true] {
                let mut emu = Lofi::new(Fidelity::QEMU_LIKE);
                emu.set_chain(on);
                flat(&mut emu);
                let mut prog = vec![0xb9, 40, 0, 0, 0];
                prog.extend(std::iter::repeat(0x40).take(16));
                prog.extend_from_slice(&[0x49, 0x75, 0xed, 0xf4]);
                emu.load_image(0x1000, &prog);
                let exit = emu.run(budget);
                states.push((exit, emu.snapshot(exit), emu.stats().insns));
            }
            assert_eq!(states[0], states[1], "budget {budget}");
        }
    }

    #[test]
    fn segment_limit_not_enforced_by_default() {
        let mut emu = Lofi::new(Fidelity::QEMU_LIKE);
        flat(&mut emu);
        emu.machine_mut().segs[3].limit = 0x10; // tiny DS
                                                // mov [0x2000], al ; hlt — far beyond the DS limit.
        emu.load_image(0x1000, &[0xa2, 0x00, 0x20, 0x00, 0x00, 0xf4]);
        let exit = emu.run(16);
        assert_eq!(
            exit,
            RunExit::Halted,
            "Lo-Fi fast path skips the limit check"
        );

        let mut emu = Lofi::new(Fidelity {
            enforce_segment_checks: true,
            ..Fidelity::QEMU_LIKE
        });
        flat(&mut emu);
        emu.machine_mut().segs[3].limit = 0x10;
        emu.load_image(0x1000, &[0xa2, 0x00, 0x20, 0x00, 0x00, 0xf4]);
        let exit = emu.run(16);
        assert_eq!(
            exit,
            RunExit::Exception(Exception::Gp(0)),
            "fixed build enforces it"
        );
    }

    #[test]
    fn undocumented_encodings_rejected() {
        let mut emu = Lofi::new(Fidelity::QEMU_LIKE);
        flat(&mut emu);
        emu.load_image(0x1000, &[0xd6, 0xf4]); // salc
        assert_eq!(emu.run(4), RunExit::Exception(Exception::Ud));

        let mut emu = Lofi::new(Fidelity {
            accept_undocumented: true,
            ..Fidelity::QEMU_LIKE
        });
        flat(&mut emu);
        // stc; salc; hlt — with acceptance on, salc runs: AL = CF ? 0xff : 0.
        emu.load_image(0x1000, &[0xf9, 0xd6, 0xf4]);
        let exit = emu.run(4);
        assert_eq!(exit, RunExit::Halted, "accepted salc must execute");
        assert_eq!(emu.machine().gpr[0] & 0xff, 0xff, "salc sets AL from CF");
    }

    #[test]
    fn hot_scopes_isolate_attribution() {
        let run_loop = || {
            let mut emu = Lofi::new(Fidelity::QEMU_LIKE);
            flat(&mut emu);
            emu.load_image(0x1000, &[0xb9, 5, 0, 0, 0, 0x49, 0x75, 0xfd, 0xf4]);
            assert_eq!(emu.run(64), RunExit::Halted);
        };
        {
            let _scope = hot_scope(0xdead_0001);
            run_loop();
        }
        {
            let _scope = hot_scope(0xdead_0002);
            run_loop();
            run_loop();
        }
        let one = hot_tbs_in(0xdead_0001);
        let two = hot_tbs_in(0xdead_0002);
        let count = |v: &[(u32, u64)]| {
            v.iter()
                .find(|&&(eip, _)| eip == 0x1005)
                .map(|&(_, n)| n)
                .unwrap_or(0)
        };
        assert!(count(&one) >= 4);
        assert_eq!(
            count(&two),
            2 * count(&one),
            "scopes must not bleed into each other"
        );
    }
}
