//! The Lo-Fi softmmu: fast-path segmentation and a TLB-cached page walk.
//!
//! This module is where the paper's headline Lo-Fi deviation lives: the
//! fast path computes `segment base + offset` and goes straight to paging —
//! **no limit, rights, or presence checks** — because that is how a
//! translation-block fast path avoids per-access overhead (QEMU's design,
//! and the reason "QEMU does not implement segmentation properly", §6.2).
//! When [`Fidelity::enforce_segment_checks`] is set, the full reference
//! checks are performed instead, which the ablation experiment uses.
//!
//! Paging itself matches the architecture (QEMU's paging is essentially
//! correct): present/rw/us checks, CR0.WP, accessed/dirty maintenance, and
//! 4-MiB pages, with a software TLB that is flushed on CR writes.

use std::collections::{HashMap, HashSet};

use pokemu_isa::state::{cr0, cr4, Exception, Seg};

use crate::state::{Fidelity, LofiMachine};

/// Access kinds for permission checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Exec,
}

/// One TLB entry: virtual page -> physical page with effective permissions.
#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    phys_page: u32,
    writable: bool,
    user: bool,
    /// The walk that filled this entry already set the dirty bit (a write
    /// walk); write hits are only allowed then, so D-bit maintenance is
    /// never skipped.
    dirty: bool,
}

/// The software TLB.
#[derive(Debug, Default)]
pub struct Tlb {
    entries: HashMap<u32, TlbEntry>,
    /// Physical pages holding page-table structures seen by walks. Guest
    /// writes into them flush the TLB, keeping translation coherent with
    /// the TLB-less hardware oracle (QEMU's softmmu tracks page-table
    /// pages for the same reason).
    table_pages: HashSet<u32>,
}

impl Tlb {
    /// Flushes all entries (CR0/CR3/CR4 writes, `invlpg`).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Notes a guest store to the physical page `page`, flushing when it
    /// holds page-table structures.
    pub fn note_store(&mut self, page: u32) {
        if self.table_pages.contains(&page) {
            self.entries.clear();
        }
    }

    /// Number of cached translations (diagnostics).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the TLB holds no translations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

fn pf_error(kind: Access, user: bool, present: bool) -> u16 {
    (present as u16) | (((kind == Access::Write) as u16) << 1) | ((user as u16) << 2)
}

/// Computes the linear address for a segment access.
///
/// The fast path adds the cached base, nothing more. With
/// `enforce_segment_checks`, the reference checks run first.
///
/// # Errors
///
/// Only with `enforce_segment_checks`: #SS(0)/#GP(0) per the reference
/// rules.
pub fn seg_linear(
    m: &LofiMachine,
    fid: &Fidelity,
    seg: Seg,
    off: u32,
    len: u8,
    kind: Access,
) -> Result<u32, Exception> {
    let s = &m.segs[seg as usize];
    if fid.enforce_segment_checks {
        let fault = || {
            if seg == Seg::Ss {
                Exception::Ss(0)
            } else {
                Exception::Gp(0)
            }
        };
        let attrs = s.attrs;
        if attrs & (1 << 7) == 0 {
            return Err(fault()); // not present
        }
        if attrs & (1 << 4) == 0 {
            return Err(fault()); // system descriptor
        }
        let is_code = attrs & (1 << 3) != 0;
        let bit1 = attrs & (1 << 1) != 0;
        match kind {
            Access::Write => {
                if is_code || !bit1 {
                    return Err(fault());
                }
            }
            Access::Read => {
                if is_code && !bit1 {
                    return Err(fault());
                }
            }
            Access::Exec => {
                if !is_code {
                    return Err(fault());
                }
            }
        }
        let end = off as u64 + (len as u64 - 1);
        let expand_down = !is_code && attrs & (1 << 2) != 0;
        if expand_down {
            if off as u64 <= s.limit as u64 || end > 0xffff_ffff {
                return Err(fault());
            }
        } else if end > s.limit as u64 {
            return Err(fault());
        }
    }
    Ok(s.base.wrapping_add(off))
}

/// Translates a linear address through the TLB / page walk.
///
/// # Errors
///
/// #PF with the architectural error code; CR2 is set.
pub fn translate(
    m: &mut LofiMachine,
    tlb: &mut Tlb,
    lin: u32,
    kind: Access,
) -> Result<u32, Exception> {
    if m.cr0 & (1 << cr0::PG) == 0 {
        return Ok(lin);
    }
    let user = m.cpl() == 3;
    let page = lin >> 12;
    if let Some(e) = tlb.entries.get(&page) {
        // Fast hit: permissions already folded in. Writes only hit entries
        // filled by a write walk (dirty bit already maintained).
        let wp = m.cr0 & (1 << cr0::WP) != 0;
        let write_ok = (e.writable || (!user && !wp)) && e.dirty;
        let user_ok = !user || e.user;
        if user_ok && (kind != Access::Write || write_ok) {
            return Ok((e.phys_page << 12) | (lin & 0xfff));
        }
    }
    walk(m, tlb, lin, kind, user)
}

fn walk(
    m: &mut LofiMachine,
    tlb: &mut Tlb,
    lin: u32,
    kind: Access,
    user: bool,
) -> Result<u32, Exception> {
    let fail = |m: &mut LofiMachine, present: bool| {
        m.cr2 = lin;
        Err(Exception::Pf(pf_error(kind, user, present), lin))
    };
    let pde_addr = (m.cr3 & 0xffff_f000).wrapping_add((lin >> 22) << 2);
    let pde = m.phys_read(pde_addr, 4);
    if pde & 1 == 0 {
        return fail(m, false);
    }
    let wp = m.cr0 & (1 << cr0::WP) != 0;
    let big = pde & (1 << 7) != 0 && m.cr4 & (1 << cr4::PSE) != 0;
    if big {
        let rw = pde & 2 != 0;
        let us = pde & 4 != 0;
        check_perms(kind, user, rw, us, wp).map_err(|p| {
            m.cr2 = lin;
            Exception::Pf(pf_error(kind, user, p), lin)
        })?;
        let mut new_pde = pde | (1 << 5);
        if kind == Access::Write {
            new_pde |= 1 << 6;
        }
        m.phys_write(pde_addr, new_pde, 4);
        tlb.table_pages
            .insert((pde_addr % pokemu_isa::state::PHYS_MEM_SIZE) >> 12);
        let phys = (pde & 0xffc0_0000) | (lin & 0x3f_ffff);
        tlb.entries.insert(
            lin >> 12,
            TlbEntry {
                phys_page: phys >> 12,
                writable: rw,
                user: us,
                dirty: kind == Access::Write,
            },
        );
        return Ok(phys);
    }
    let pte_addr = (pde & 0xffff_f000).wrapping_add(((lin >> 12) & 0x3ff) << 2);
    let pte = m.phys_read(pte_addr, 4);
    if pte & 1 == 0 {
        return fail(m, false);
    }
    let rw = (pde & pte & 2) != 0;
    let us = (pde & pte & 4) != 0;
    check_perms(kind, user, rw, us, wp).map_err(|p| {
        m.cr2 = lin;
        Exception::Pf(pf_error(kind, user, p), lin)
    })?;
    m.phys_write(pde_addr, pde | (1 << 5), 4);
    let mut new_pte = pte | (1 << 5);
    if kind == Access::Write {
        new_pte |= 1 << 6;
    }
    m.phys_write(pte_addr, new_pte, 4);
    tlb.table_pages
        .insert((pde_addr % pokemu_isa::state::PHYS_MEM_SIZE) >> 12);
    tlb.table_pages
        .insert((pte_addr % pokemu_isa::state::PHYS_MEM_SIZE) >> 12);
    let phys = (pte & 0xffff_f000) | (lin & 0xfff);
    tlb.entries.insert(
        lin >> 12,
        TlbEntry {
            phys_page: phys >> 12,
            writable: rw,
            user: us,
            dirty: kind == Access::Write,
        },
    );
    Ok(phys)
}

fn check_perms(kind: Access, user: bool, rw: bool, us: bool, wp: bool) -> Result<(), bool> {
    if user && !us {
        return Err(true);
    }
    if kind == Access::Write && !rw {
        if user || wp {
            return Err(true);
        }
    }
    Ok(())
}

/// Reads `len` bytes of virtual memory via the fast path.
///
/// # Errors
///
/// #PF (and, with checks enabled, segmentation faults). Pages are checked in
/// ascending order; a crossing access translates both pages before reading.
pub fn read(
    m: &mut LofiMachine,
    tlb: &mut Tlb,
    fid: &Fidelity,
    seg: Seg,
    off: u32,
    len: u8,
) -> Result<u32, Exception> {
    let lin = seg_linear(m, fid, seg, off, len, Access::Read)?;
    let (p0, p1) = translate_span(m, tlb, lin, len, Access::Read)?;
    let mut v = 0u32;
    for i in 0..len {
        v |= (m.phys_read(byte_phys(lin, i, p0, p1), 1)) << (i * 8);
    }
    Ok(v)
}

/// Writes `len` bytes of virtual memory via the fast path.
///
/// # Errors
///
/// #PF (and, with checks enabled, segmentation faults). All pages are
/// checked before any byte is stored.
pub fn write(
    m: &mut LofiMachine,
    tlb: &mut Tlb,
    fid: &Fidelity,
    seg: Seg,
    off: u32,
    val: u32,
    len: u8,
) -> Result<u32, Exception> {
    let lin = seg_linear(m, fid, seg, off, len, Access::Write)?;
    let (p0, p1) = translate_span(m, tlb, lin, len, Access::Write)?;
    for i in 0..len {
        let a = byte_phys(lin, i, p0, p1);
        m.phys_write(a, (val >> (i * 8)) & 0xff, 1);
    }
    tlb.note_store((p0 % pokemu_isa::state::PHYS_MEM_SIZE) >> 12);
    if let Some(p1) = p1 {
        tlb.note_store((p1 % pokemu_isa::state::PHYS_MEM_SIZE) >> 12);
    }
    Ok(p0)
}

/// Reads at a linear address, bypassing segmentation (descriptor tables).
///
/// # Errors
///
/// #PF from the page walk.
pub fn lin_read(m: &mut LofiMachine, tlb: &mut Tlb, lin: u32, len: u8) -> Result<u32, Exception> {
    let (p0, p1) = translate_span(m, tlb, lin, len, Access::Read)?;
    let mut v = 0u32;
    for i in 0..len {
        v |= (m.phys_read(byte_phys(lin, i, p0, p1), 1)) << (i * 8);
    }
    Ok(v)
}

/// Writes at a linear address, bypassing segmentation.
///
/// # Errors
///
/// #PF from the page walk.
pub fn lin_write(
    m: &mut LofiMachine,
    tlb: &mut Tlb,
    lin: u32,
    val: u32,
    len: u8,
) -> Result<(), Exception> {
    let (p0, p1) = translate_span(m, tlb, lin, len, Access::Write)?;
    for i in 0..len {
        let a = byte_phys(lin, i, p0, p1);
        m.phys_write(a, (val >> (i * 8)) & 0xff, 1);
    }
    tlb.note_store((p0 % pokemu_isa::state::PHYS_MEM_SIZE) >> 12);
    if let Some(p1) = p1 {
        tlb.note_store((p1 % pokemu_isa::state::PHYS_MEM_SIZE) >> 12);
    }
    Ok(())
}

/// Fetches one code byte (used by the translator).
///
/// # Errors
///
/// #PF; with checks enabled also CS limit/rights faults.
pub fn fetch_byte(
    m: &mut LofiMachine,
    tlb: &mut Tlb,
    fid: &Fidelity,
    eip: u32,
) -> Result<u8, Exception> {
    let lin = seg_linear(m, fid, Seg::Cs, eip, 1, Access::Exec)?;
    let phys = translate(m, tlb, lin, Access::Exec)?;
    Ok(m.phys_read(phys, 1) as u8)
}

fn translate_span(
    m: &mut LofiMachine,
    tlb: &mut Tlb,
    lin: u32,
    len: u8,
    kind: Access,
) -> Result<(u32, Option<u32>), Exception> {
    let p0 = translate(m, tlb, lin, kind)?;
    let last = lin.wrapping_add(len as u32 - 1);
    if last >> 12 == lin >> 12 {
        return Ok((p0, None));
    }
    let p1 = translate(m, tlb, (last >> 12) << 12, kind)?;
    Ok((p0, Some(p1)))
}

fn byte_phys(lin: u32, i: u8, p0: u32, p1: Option<u32>) -> u32 {
    let b = lin.wrapping_add(i as u32);
    if b >> 12 == lin >> 12 {
        p0 + (b - lin)
    } else {
        p1.expect("span translated") + (b & 0xfff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paged_machine() -> (LofiMachine, Tlb) {
        let mut m = LofiMachine::new();
        // Identity map: PD at 0x10000, PT at 0x11000.
        m.phys_write(0x10000, 0x11000 | 0x3, 4);
        for i in 0..1024u32 {
            m.phys_write(0x11000 + i * 4, (i << 12) | 0x3, 4);
        }
        m.cr3 = 0x10000;
        m.cr0 = (1 << cr0::PE) | (1 << cr0::PG);
        // Flat ring-0 code segment so cpl() == 0.
        m.segs[1].attrs = 0xb | (1 << 4) | (1 << 7);
        (m, Tlb::default())
    }

    #[test]
    fn fast_path_skips_segment_limits() {
        let mut m = LofiMachine::new();
        m.cr0 = 1; // PE, no paging
        m.segs[3].limit = 0x10; // tiny DS limit
        m.segs[3].attrs = 0x3 | (1 << 4) | (1 << 7);
        let fid = Fidelity::QEMU_LIKE;
        // Write far past the limit: the Lo-Fi fast path allows it.
        assert!(write(&mut m, &mut Tlb::default(), &fid, Seg::Ds, 0x5000, 0xff, 1).is_ok());
        // With the fix, it faults like the reference.
        let fid = Fidelity {
            enforce_segment_checks: true,
            ..Fidelity::QEMU_LIKE
        };
        assert_eq!(
            write(&mut m, &mut Tlb::default(), &fid, Seg::Ds, 0x5000, 0xff, 1),
            Err(Exception::Gp(0))
        );
    }

    #[test]
    fn page_walk_sets_accessed_dirty_and_faults() {
        let (mut m, mut tlb) = paged_machine();
        let fid = Fidelity::QEMU_LIKE;
        m.segs[3].attrs = 0x3 | (1 << 4) | (1 << 7);
        write(&mut m, &mut tlb, &fid, Seg::Ds, 0x30123, 0x55, 1).unwrap();
        let pte = m.phys_read(0x11000 + 0x30 * 4, 4);
        assert_ne!(pte & (1 << 5), 0);
        assert_ne!(pte & (1 << 6), 0);
        // Unmap a page and fault.
        m.phys_write(0x11000 + 0x40 * 4, 0, 4);
        tlb.flush();
        let r = write(&mut m, &mut tlb, &fid, Seg::Ds, 0x40000, 1, 1);
        assert_eq!(r, Err(Exception::Pf(0x2, 0x40000)));
        assert_eq!(m.cr2, 0x40000);
    }

    #[test]
    fn tlb_caches_translations() {
        let (mut m, mut tlb) = paged_machine();
        let fid = Fidelity::QEMU_LIKE;
        read(&mut m, &mut tlb, &fid, Seg::Ds, 0x1234, 4).unwrap();
        assert_eq!(tlb.len(), 1);
        read(&mut m, &mut tlb, &fid, Seg::Ds, 0x1238, 4).unwrap();
        assert_eq!(tlb.len(), 1, "second read hits the TLB");
    }
}
