//! Lo-Fi machine state: flat registers, lazy condition codes, fidelity
//! configuration.
//!
//! Unlike the Hi-Fi emulator, which shares the reference interpreter, the
//! Lo-Fi emulator is an entirely separate implementation in the mold of
//! QEMU: plain `u32` state, guest RAM as one flat allocation, and EFLAGS
//! kept *lazily* as the operands/result of the last flag-setting operation,
//! materialized only when read. Lazy flags are one authentic source of the
//! undefined-flag differences the paper observes (§6.2).

use pokemu_isa::state::flags as fl;
use pokemu_isa::state::PHYS_MEM_SIZE;

/// Which fidelity gaps are *fixed*. The default (all `false`) is the QEMU
/// profile whose deviations the paper's evaluation finds; the ablation
/// experiment (A1) flips fixes one at a time and re-runs cross-validation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fidelity {
    /// Enforce segment limits/rights/presence on ordinary data accesses.
    /// QEMU's fast path translates `base + offset` directly ("does not
    /// enforce segment limits and rights with the majority of
    /// instructions", §6.2).
    pub enforce_segment_checks: bool,
    /// Make `leave` atomic: check the stack read before clobbering ESP
    /// (§6.2: "corrupts the stack pointer when the page containing the top
    /// of the stack is not accessible").
    pub atomic_leave: bool,
    /// Make `cmpxchg` atomic: check the destination write before updating
    /// the accumulator (§6.2).
    pub atomic_cmpxchg: bool,
    /// Raise #GP on `rdmsr`/`wrmsr` of an invalid MSR instead of returning
    /// zero (§6.2).
    pub msr_gp_on_invalid: bool,
    /// Pop `iret` frames innermost-first (ascending addresses) like the
    /// hardware, instead of outermost-first (§6.2).
    pub iret_ascending: bool,
    /// Maintain the descriptor "accessed" bit on segment loads (§6.2).
    pub set_accessed_bit: bool,
    /// Accept the undocumented-but-real encodings (`0x82` alias, `salc`,
    /// `int1`, `f6 /1`) instead of #UD (§6.2: "QEMU does not consider valid
    /// certain instruction encodings").
    pub accept_undocumented: bool,
}

impl Fidelity {
    /// The as-shipped Lo-Fi profile (every gap present).
    pub const QEMU_LIKE: Fidelity = Fidelity {
        enforce_segment_checks: false,
        atomic_leave: false,
        atomic_cmpxchg: false,
        msr_gp_on_invalid: false,
        iret_ascending: false,
        set_accessed_bit: false,
        accept_undocumented: false,
    };

    /// Everything fixed — used to show the tests "can be used again in the
    /// future to validate the implementation" (§6.2).
    pub const ALL_FIXED: Fidelity = Fidelity {
        enforce_segment_checks: true,
        atomic_leave: true,
        atomic_cmpxchg: true,
        msr_gp_on_invalid: true,
        iret_ascending: true,
        set_accessed_bit: true,
        accept_undocumented: true,
    };
}

/// Lazy condition-code operation kinds (QEMU's `CC_OP_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcOp {
    /// Status flags are fully materialized in `dst`.
    Flags,
    /// Logical op: result in `dst`. CF=OF=AF=0 (AF is the deviation: the
    /// architecture leaves it undefined, real silicon often tracks the ALU).
    Logic,
    /// Addition: operands in `src1`/`src2`, result in `dst`.
    Add,
    /// Addition with carry-in recorded in `src3`.
    Adc,
    /// Subtraction `src1 - src2 = dst`.
    Sub,
    /// Subtraction with borrow-in recorded in `src3`.
    Sbb,
    /// Increment: result in `dst`, previous CF in `src1`.
    Inc,
    /// Decrement: result in `dst`, previous CF in `src1`.
    Dec,
}

/// The lazy condition-code record.
#[derive(Debug, Clone, Copy)]
pub struct CcState {
    /// Operation kind.
    pub op: CcOp,
    /// Operand size in bytes (1, 2, 4).
    pub size: u8,
    /// Result (or the full status-flag image for [`CcOp::Flags`]).
    pub dst: u32,
    /// First operand / auxiliary.
    pub src1: u32,
    /// Second operand.
    pub src2: u32,
    /// Carry/borrow-in for Adc/Sbb.
    pub src3: u32,
}

impl Default for CcState {
    fn default() -> Self {
        CcState {
            op: CcOp::Flags,
            size: 4,
            dst: 0,
            src1: 0,
            src2: 0,
            src3: 0,
        }
    }
}

fn parity8(v: u32) -> u32 {
    (((v as u8).count_ones() + 1) & 1) as u32
}

fn msb(v: u32, size: u8) -> u32 {
    (v >> (size * 8 - 1)) & 1
}

fn mask(size: u8) -> u64 {
    (1u64 << (size * 8)) - 1
}

impl CcState {
    /// Materializes the six status flags as an EFLAGS-positioned bitmask.
    pub fn materialize(&self) -> u32 {
        let size = self.size;
        let d = (self.dst as u64 & mask(size)) as u32;
        let s1 = (self.src1 as u64 & mask(size)) as u32;
        let s2 = (self.src2 as u64 & mask(size)) as u32;
        let set = |bit: u8, v: u32| if v != 0 { 1u32 << bit } else { 0 };
        let common = |r: u32| {
            set(fl::ZF, (r == 0) as u32) | set(fl::SF, msb(r, size)) | set(fl::PF, parity8(r))
        };
        match self.op {
            CcOp::Flags => self.dst & fl::STATUS,
            CcOp::Logic => common(d),
            CcOp::Add | CcOp::Adc => {
                let cin = if self.op == CcOp::Adc {
                    self.src3 & 1
                } else {
                    0
                };
                let full = (s1 as u64) + (s2 as u64) + cin as u64;
                let cf = ((full >> (size * 8)) & 1) as u32;
                let of = msb((s1 ^ d) & (s2 ^ d), size);
                let af = ((s1 ^ s2 ^ d) >> 4) & 1;
                common(d) | set(fl::CF, cf) | set(fl::OF, of) | set(fl::AF, af)
            }
            CcOp::Sub | CcOp::Sbb => {
                let bin = if self.op == CcOp::Sbb {
                    self.src3 & 1
                } else {
                    0
                };
                let cf = (((s1 as u64) < (s2 as u64 + bin as u64)) as u32) & 1;
                let of = msb((s1 ^ s2) & (s1 ^ d), size);
                let af = ((s1 ^ s2 ^ d) >> 4) & 1;
                common(d) | set(fl::CF, cf) | set(fl::OF, of) | set(fl::AF, af)
            }
            CcOp::Inc => {
                // CF preserved from before (src1); OF when result is the
                // minimum signed value; AF when low nibble wrapped to 0.
                let of = (d as u64 & mask(size) == (mask(size) >> 1) + 1) as u32;
                let af = ((d & 0xf) == 0) as u32;
                common(d) | set(fl::CF, self.src1 & 1) | set(fl::OF, of) | set(fl::AF, af)
            }
            CcOp::Dec => {
                let of = (d as u64 & mask(size) == (mask(size) >> 1)) as u32;
                let af = ((d & 0xf) == 0xf) as u32;
                common(d) | set(fl::CF, self.src1 & 1) | set(fl::OF, of) | set(fl::AF, af)
            }
        }
    }

    /// The carry flag alone, as 0 or 1. Exactly the CF bit
    /// [`materialize`](Self::materialize) would produce, without paying
    /// for the other five flags — the hot path for `GetCf` (every
    /// `inc`/`dec`/`adc` threads the previous CF through it).
    pub fn cf(&self) -> u32 {
        match self.op {
            CcOp::Flags => (self.dst >> fl::CF) & 1,
            CcOp::Logic => 0,
            CcOp::Add | CcOp::Adc => {
                let cin = if self.op == CcOp::Adc {
                    (self.src3 & 1) as u64
                } else {
                    0
                };
                let s1 = self.src1 as u64 & mask(self.size);
                let s2 = self.src2 as u64 & mask(self.size);
                (((s1 + s2 + cin) >> (self.size * 8)) & 1) as u32
            }
            CcOp::Sub | CcOp::Sbb => {
                let bin = if self.op == CcOp::Sbb {
                    (self.src3 & 1) as u64
                } else {
                    0
                };
                let s1 = self.src1 as u64 & mask(self.size);
                let s2 = self.src2 as u64 & mask(self.size);
                (s1 < s2 + bin) as u32
            }
            CcOp::Inc | CcOp::Dec => self.src1 & 1,
        }
    }

    /// The zero flag alone, as 0 or 1 (see [`cf`](Self::cf)).
    pub fn zf(&self) -> u32 {
        match self.op {
            CcOp::Flags => (self.dst >> fl::ZF) & 1,
            _ => (self.dst as u64 & mask(self.size) == 0) as u32,
        }
    }

    /// The sign flag alone, as 0 or 1 (see [`cf`](Self::cf)).
    pub fn sf(&self) -> u32 {
        match self.op {
            CcOp::Flags => (self.dst >> fl::SF) & 1,
            _ => msb((self.dst as u64 & mask(self.size)) as u32, self.size),
        }
    }

    /// The parity flag alone, as 0 or 1 (see [`cf`](Self::cf)).
    pub fn pf(&self) -> u32 {
        match self.op {
            CcOp::Flags => (self.dst >> fl::PF) & 1,
            _ => parity8((self.dst as u64 & mask(self.size)) as u32),
        }
    }

    /// The overflow flag alone, as 0 or 1 (see [`cf`](Self::cf)).
    pub fn of(&self) -> u32 {
        let size = self.size;
        let d = (self.dst as u64 & mask(size)) as u32;
        let s1 = (self.src1 as u64 & mask(size)) as u32;
        let s2 = (self.src2 as u64 & mask(size)) as u32;
        match self.op {
            CcOp::Flags => (self.dst >> fl::OF) & 1,
            CcOp::Logic => 0,
            CcOp::Add | CcOp::Adc => msb((s1 ^ d) & (s2 ^ d), size),
            CcOp::Sub | CcOp::Sbb => msb((s1 ^ s2) & (s1 ^ d), size),
            CcOp::Inc => (d as u64 & mask(size) == (mask(size) >> 1) + 1) as u32,
            CcOp::Dec => (d as u64 & mask(size) == (mask(size) >> 1)) as u32,
        }
    }
}

/// One Lo-Fi segment register.
#[derive(Debug, Clone, Copy, Default)]
pub struct LofiSeg {
    /// Visible selector.
    pub selector: u16,
    /// Cached base.
    pub base: u32,
    /// Cached byte-granular limit.
    pub limit: u32,
    /// Cached attributes (same 12-bit layout as the reference).
    pub attrs: u16,
}

/// The Lo-Fi guest machine.
#[derive(Debug, Clone)]
pub struct LofiMachine {
    /// General-purpose registers.
    pub gpr: [u32; 8],
    /// Instruction pointer.
    pub eip: u32,
    /// Non-status EFLAGS bits (IF, DF, IOPL, ...); status bits live in `cc`.
    pub eflags_other: u32,
    /// Lazy condition codes.
    pub cc: CcState,
    /// Segment registers.
    pub segs: [LofiSeg; 6],
    /// CR0.
    pub cr0: u32,
    /// CR2.
    pub cr2: u32,
    /// CR3.
    pub cr3: u32,
    /// CR4.
    pub cr4: u32,
    /// GDTR (base, limit).
    pub gdtr: (u32, u16),
    /// IDTR (base, limit).
    pub idtr: (u32, u16),
    /// SYSENTER MSRs + TSC.
    pub msrs: [u32; 3],
    /// Time-stamp counter.
    pub tsc: u64,
    /// Guest RAM, one flat allocation (QEMU-style).
    pub ram: Vec<u8>,
}

impl Default for LofiMachine {
    fn default() -> Self {
        Self::new()
    }
}

impl LofiMachine {
    /// A zeroed machine with 4 MiB of RAM.
    pub fn new() -> Self {
        LofiMachine {
            gpr: [0; 8],
            eip: 0,
            eflags_other: fl::FIXED_ONE,
            cc: CcState::default(),
            segs: [LofiSeg::default(); 6],
            cr0: 0,
            cr2: 0,
            cr3: 0,
            cr4: 0,
            gdtr: (0, 0),
            idtr: (0, 0),
            msrs: [0; 3],
            tsc: 0,
            ram: vec![0; PHYS_MEM_SIZE as usize],
        }
    }

    /// The fully materialized EFLAGS value.
    pub fn eflags(&self) -> u32 {
        (self.eflags_other & !fl::STATUS) | self.cc.materialize() | fl::FIXED_ONE
    }

    /// Replaces the full EFLAGS value (commits lazily-held status bits).
    pub fn set_eflags(&mut self, v: u32) {
        self.eflags_other = (v & !fl::STATUS) | fl::FIXED_ONE;
        self.cc = CcState {
            op: CcOp::Flags,
            size: 4,
            dst: v & fl::STATUS,
            src1: 0,
            src2: 0,
            src3: 0,
        };
    }

    /// Current privilege level (CS cache DPL).
    pub fn cpl(&self) -> u8 {
        ((self.segs[1].attrs >> 5) & 3) as u8
    }

    /// Reads physical memory (wrapping at the RAM size).
    pub fn phys_read(&self, addr: u32, size: u8) -> u32 {
        let mut v = 0u32;
        for i in 0..size {
            let a = (addr.wrapping_add(i as u32) % PHYS_MEM_SIZE) as usize;
            v |= (self.ram[a] as u32) << (i * 8);
        }
        v
    }

    /// Writes physical memory (wrapping at the RAM size).
    pub fn phys_write(&mut self, addr: u32, val: u32, size: u8) {
        for i in 0..size {
            let a = (addr.wrapping_add(i as u32) % PHYS_MEM_SIZE) as usize;
            self.ram[a] = (val >> (i * 8)) as u8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_add_flags_match_expectations() {
        let cc = CcState {
            op: CcOp::Add,
            size: 1,
            dst: 0,
            src1: 0xff,
            src2: 1,
            src3: 0,
        };
        let f = cc.materialize();
        assert_ne!(f & (1 << fl::CF), 0);
        assert_ne!(f & (1 << fl::ZF), 0);
        assert_eq!(f & (1 << fl::OF), 0);
        assert_ne!(f & (1 << fl::AF), 0);
    }

    #[test]
    fn lazy_sub_borrow() {
        let cc = CcState {
            op: CcOp::Sub,
            size: 4,
            dst: 1u32.wrapping_sub(2),
            src1: 1,
            src2: 2,
            src3: 0,
        };
        let f = cc.materialize();
        assert_ne!(f & (1 << fl::CF), 0);
        assert_ne!(f & (1 << fl::SF), 0);
        assert_eq!(f & (1 << fl::OF), 0);
    }

    #[test]
    fn inc_preserves_cf() {
        let cc = CcState {
            op: CcOp::Inc,
            size: 4,
            dst: 0x80000000,
            src1: 1,
            src2: 0,
            src3: 0,
        };
        let f = cc.materialize();
        assert_ne!(f & (1 << fl::CF), 0, "CF carried through");
        assert_ne!(f & (1 << fl::OF), 0, "0x7fffffff + 1 overflows");
    }

    #[test]
    fn eflags_roundtrip() {
        let mut m = LofiMachine::new();
        m.set_eflags(0x246);
        assert_eq!(m.eflags(), 0x246);
        m.set_eflags(0x893); // CF | bit1 | AF | SF | ZF? (0x893 = CF+AF+SF+TF...)
        assert_eq!(m.eflags(), 0x893 | fl::FIXED_ONE);
    }

    #[test]
    fn phys_memory_wraps() {
        let mut m = LofiMachine::new();
        m.phys_write(10, 0xdeadbeef, 4);
        assert_eq!(m.phys_read(10 + PHYS_MEM_SIZE, 4), 0xdeadbeef);
    }

    /// The single-flag accessors are the IR-skip hot path; they must agree
    /// bit-for-bit with full materialization for every op/size/operand
    /// combination or the lazy and materialized paths drift.
    #[test]
    fn single_flag_accessors_match_materialize() {
        let ops = [
            CcOp::Flags,
            CcOp::Logic,
            CcOp::Add,
            CcOp::Adc,
            CcOp::Sub,
            CcOp::Sbb,
            CcOp::Inc,
            CcOp::Dec,
        ];
        let vals = [
            0u32,
            1,
            2,
            0x7f,
            0x80,
            0xff,
            0x100,
            0x7fff,
            0x8000,
            0xffff,
            0x1_0000,
            0x7fff_ffff,
            0x8000_0000,
            0xffff_ffff,
            0x1234_5678,
            0xdead_beef,
        ];
        let mut x = 0x9e37_79b9u32; // deterministic LCG-ish mixer
        for op in ops {
            for size in [1u8, 2, 4] {
                for i in 0..200 {
                    let pick = |x: &mut u32| {
                        *x = x.wrapping_mul(0x01000193).wrapping_add(i);
                        vals[(*x >> 11) as usize % vals.len()] ^ (*x & 0xffff)
                    };
                    let cc = CcState {
                        op,
                        size,
                        dst: pick(&mut x),
                        src1: pick(&mut x),
                        src2: pick(&mut x),
                        src3: pick(&mut x) & 1,
                    };
                    let full = cc.materialize();
                    let bit = |b: u8| (full >> b) & 1;
                    assert_eq!(cc.cf(), bit(fl::CF), "CF {cc:?}");
                    assert_eq!(cc.zf(), bit(fl::ZF), "ZF {cc:?}");
                    assert_eq!(cc.sf(), bit(fl::SF), "SF {cc:?}");
                    assert_eq!(cc.pf(), bit(fl::PF), "PF {cc:?}");
                    assert_eq!(cc.of(), bit(fl::OF), "OF {cc:?}");
                }
            }
        }
    }
}
