//! The micro-op executor and helper layer (QEMU's TCG interpreter +
//! `helper_*` functions).
//!
//! Micro-ops commit eagerly against the machine; a fault aborts the block
//! with EIP rolled back to the current instruction — but *not* the partial
//! state changes, which is precisely how the Lo-Fi atomicity violations
//! become observable (§6.2).

use pokemu_isa::state::flags as fl;
use pokemu_isa::state::{cr0, cr4, Exception, Seg, VALID_MSRS};
use pokemu_isa::translate::desc_kind;

use crate::mmu::{self, Tlb};
use crate::state::{CcOp, CcState, Fidelity, LofiMachine};
use crate::translate::Tb;
use crate::uop::{AluKind, CcKind, Helper, Uop, UOP_COVERAGE_BITS};

/// The Lo-Fi execution core: machine + TLB + fidelity profile.
#[derive(Debug)]
pub struct Core {
    /// Guest machine.
    pub m: LofiMachine,
    /// Software TLB.
    pub tlb: Tlb,
    /// Fidelity profile.
    pub fid: Fidelity,
    /// Virtual pages written since last drained (for TB invalidation).
    pub dirty_pages: Vec<u32>,
}

impl Core {
    /// Creates a core with the given fidelity profile.
    pub fn new(fid: Fidelity) -> Self {
        Core {
            m: LofiMachine::new(),
            tlb: Tlb::default(),
            fid,
            dirty_pages: Vec::new(),
        }
    }

    fn vread(&mut self, seg: Seg, off: u32, len: u8) -> Result<u32, Exception> {
        mmu::read(&mut self.m, &mut self.tlb, &self.fid, seg, off, len)
    }

    fn vwrite(&mut self, seg: Seg, off: u32, val: u32, len: u8) -> Result<(), Exception> {
        let lin = mmu::seg_linear(&self.m, &self.fid, seg, off, len, mmu::Access::Write)?;
        self.track_dirty(lin, len);
        mmu::lin_write(&mut self.m, &mut self.tlb, lin, val, len)
    }

    fn lread(&mut self, lin: u32, len: u8) -> Result<u32, Exception> {
        mmu::lin_read(&mut self.m, &mut self.tlb, lin, len)
    }

    fn lwrite(&mut self, lin: u32, val: u32, len: u8) -> Result<(), Exception> {
        self.track_dirty(lin, len);
        mmu::lin_write(&mut self.m, &mut self.tlb, lin, val, len)
    }

    fn track_dirty(&mut self, lin: u32, len: u8) {
        self.dirty_pages.push(lin >> 12);
        let last = lin.wrapping_add(len as u32 - 1) >> 12;
        if last != lin >> 12 {
            self.dirty_pages.push(last);
        }
    }
}

/// Why block execution stopped.
///
/// The three `Continue`-shaped variants are distinguished by *how* the
/// successor EIP was produced, because that is what decides whether the
/// dispatch layer may chain the edge (DESIGN.md §11): a successor that is
/// a translation-time constant always leads to the same block, so a
/// per-TB successor slot can cache the link; a computed successor can
/// change between executions and must go through the full lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TbExit {
    /// Continue at this EIP, which was computed at run time (indirect
    /// jump, return, helper-driven transfer). Never chained.
    Next(u32),
    /// A direct branch was taken: the target is a translation-time
    /// constant (chainable via the block's *taken* slot).
    Taken(u32),
    /// A direct branch fell through, or the block ran off its end: the
    /// successor is the translation-time block end (chainable via the
    /// block's *not-taken* slot).
    Fallthrough(u32),
    /// The CPU halted.
    Halt,
    /// An exception was raised (EIP points at the faulting instruction).
    Fault(Exception),
}

pub(crate) fn mask(size: u8) -> u32 {
    if size == 4 {
        u32::MAX
    } else {
        (1u32 << (size * 8)) - 1
    }
}

pub(crate) fn read_reg(m: &LofiMachine, reg: u8, size: u8) -> u32 {
    match size {
        4 => m.gpr[reg as usize],
        2 => m.gpr[reg as usize] & 0xffff,
        1 => {
            if reg < 4 {
                m.gpr[reg as usize] & 0xff
            } else {
                (m.gpr[(reg - 4) as usize] >> 8) & 0xff
            }
        }
        _ => unreachable!(),
    }
}

pub(crate) fn write_reg(m: &mut LofiMachine, reg: u8, size: u8, val: u32) {
    match size {
        4 => m.gpr[reg as usize] = val,
        2 => {
            let r = &mut m.gpr[reg as usize];
            *r = (*r & 0xffff_0000) | (val & 0xffff);
        }
        1 => {
            if reg < 4 {
                let r = &mut m.gpr[reg as usize];
                *r = (*r & 0xffff_ff00) | (val & 0xff);
            } else {
                let r = &mut m.gpr[(reg - 4) as usize];
                *r = (*r & 0xffff_00ff) | ((val & 0xff) << 8);
            }
        }
        _ => unreachable!(),
    }
}

/// Evaluates a masked ALU operation exactly as `Uop::Alu` commits it.
/// Shared between the µop interpreter and the IR-skip fast path so the
/// two execution strategies cannot drift.
pub(crate) fn alu_eval(op: AluKind, size: u8, a: u32, b: u32) -> u32 {
    let (x, y) = (a & mask(size), b & mask(size));
    let w = size * 8;
    let v = match op {
        AluKind::Add => x.wrapping_add(y),
        AluKind::Sub => x.wrapping_sub(y),
        AluKind::And => x & y,
        AluKind::Or => x | y,
        AluKind::Xor => x ^ y,
        AluKind::Shl => {
            let s = y & 31;
            if s >= w as u32 {
                0
            } else {
                x << s
            }
        }
        AluKind::Shr => {
            let s = y & 31;
            if s >= w as u32 {
                0
            } else {
                x >> s
            }
        }
        AluKind::Sar => {
            let s = y & 31;
            let sx = ((x << (32 - w)) as i32) >> (32 - w);
            if s >= w as u32 {
                (sx >> 31) as u32
            } else {
                (sx >> s) as u32
            }
        }
    };
    v & mask(size)
}

/// Commits a lazy condition-code update exactly as `Uop::SetCc` does.
/// Shared between the µop interpreter and the IR-skip fast path.
pub(crate) fn set_cc(m: &mut LofiMachine, cc: CcKind, size: u8, dst: u32, src1: u32, src2: u32) {
    let op = match cc {
        CcKind::Logic => CcOp::Logic,
        CcKind::Add => CcOp::Add,
        CcKind::Adc => CcOp::Adc,
        CcKind::Sub => CcOp::Sub,
        CcKind::Sbb => CcOp::Sbb,
        CcKind::Inc => CcOp::Inc,
        CcKind::Dec => CcOp::Dec,
    };
    // Carry/borrow-in for Adc/Sbb: the CF *before* this update, which the
    // translator read via GetCf into temp `a` for Inc/Dec, and which we
    // re-derive here for Adc/Sbb.
    let src3 = match cc {
        CcKind::Adc | CcKind::Sbb => (m.eflags() >> fl::CF) & 1,
        _ => 0,
    };
    m.cc = CcState {
        op,
        size,
        dst,
        src1,
        src2,
        src3,
    };
}

/// Evaluates an x86 condition code against the lazy flag state, computing
/// only the flags the condition consumes (the status bits live entirely
/// in `m.cc`, so this agrees with `cond_eval(m.eflags(), cc)` while
/// skipping the full six-flag materialization on the hot branch path).
pub(crate) fn cond_eval_lazy(m: &LofiMachine, cc: u8) -> bool {
    let c = &m.cc;
    let base = match cc >> 1 {
        0 => c.of() != 0,
        1 => c.cf() != 0,
        2 => c.zf() != 0,
        3 => c.cf() != 0 || c.zf() != 0,
        4 => c.sf() != 0,
        5 => c.pf() != 0,
        6 => c.sf() != c.of(),
        _ => c.zf() != 0 || (c.sf() != c.of()),
    };
    base ^ (cc & 1 == 1)
}

/// Evaluates an x86 condition code against materialized EFLAGS.
pub fn cond_eval(eflags: u32, cc: u8) -> bool {
    let f = |b: u8| eflags & (1 << b) != 0;
    let base = match cc >> 1 {
        0 => f(fl::OF),
        1 => f(fl::CF),
        2 => f(fl::ZF),
        3 => f(fl::CF) || f(fl::ZF),
        4 => f(fl::SF),
        5 => f(fl::PF),
        6 => f(fl::SF) != f(fl::OF),
        _ => f(fl::ZF) || (f(fl::SF) != f(fl::OF)),
    };
    if cc & 1 == 1 {
        !base
    } else {
        base
    }
}

/// Executes one translation block.
pub fn exec_tb(core: &mut Core, tb: &Tb) -> TbExit {
    let mut t = [0u32; 256];
    let mut cur_insn = tb.start;
    macro_rules! fault {
        ($core:expr, $e:expr) => {{
            $core.m.eip = cur_insn;
            return TbExit::Fault($e);
        }};
    }
    macro_rules! try_mem {
        ($core:expr, $r:expr) => {
            match $r {
                Ok(v) => v,
                Err(e) => fault!($core, e),
            }
        };
    }
    // Resolve the µop coverage map once per process; per-µop recording is
    // then one relaxed `fetch_or` (or a single relaxed load when disabled).
    static UOP_COV: std::sync::OnceLock<pokemu_rt::CoverageMap> = std::sync::OnceLock::new();
    let uop_cov =
        *UOP_COV.get_or_init(|| pokemu_rt::coverage::map("coverage.uop", UOP_COVERAGE_BITS));
    for uop in &tb.uops {
        uop_cov.set(uop.cov_index());
        match *uop {
            Uop::InsnStart { cur, next } => {
                cur_insn = cur;
                core.m.eip = next;
            }
            Uop::Const { dst, val } => t[dst as usize] = val,
            Uop::ReadReg { dst, reg, size } => t[dst as usize] = read_reg(&core.m, reg, size),
            Uop::WriteReg { reg, size, src } => write_reg(&mut core.m, reg, size, t[src as usize]),
            Uop::ReadSel { dst, seg } => {
                t[dst as usize] = core.m.segs[seg as usize].selector as u32
            }
            Uop::Alu {
                op,
                size,
                dst,
                a,
                b,
            } => {
                t[dst as usize] = alu_eval(op, size, t[a as usize], t[b as usize]);
            }
            Uop::Not { dst, a, size } => t[dst as usize] = !t[a as usize] & mask(size),
            Uop::Neg { dst, a, size } => {
                t[dst as usize] = (t[a as usize] & mask(size)).wrapping_neg() & mask(size)
            }
            Uop::Ext {
                dst,
                a,
                from,
                to,
                signed,
            } => {
                let v = t[a as usize] & mask(from);
                let v = if signed && to > from {
                    let shift = 32 - from * 8;
                    (((v << shift) as i32) >> shift) as u32
                } else {
                    v
                };
                t[dst as usize] = v & mask(to);
            }
            Uop::Bswap { dst, a } => t[dst as usize] = t[a as usize].swap_bytes(),
            Uop::Ld {
                dst,
                seg,
                addr,
                size,
            } => {
                t[dst as usize] = try_mem!(core, core.vread(seg, t[addr as usize], size));
            }
            Uop::St {
                seg,
                addr,
                src,
                size,
            } => {
                try_mem!(
                    core,
                    core.vwrite(seg, t[addr as usize], t[src as usize], size)
                );
            }
            Uop::Lea {
                dst,
                base,
                index,
                disp,
            } => {
                let mut ea = disp;
                if let Some(b) = base {
                    ea = ea.wrapping_add(core.m.gpr[b as usize]);
                }
                if let Some((i, s)) = index {
                    ea = ea.wrapping_add(core.m.gpr[i as usize] << s);
                }
                t[dst as usize] = ea;
            }
            Uop::SetCc {
                cc,
                size,
                dst,
                a,
                b,
            } => set_cc(
                &mut core.m,
                cc,
                size,
                t[dst as usize],
                t[a as usize],
                t[b as usize],
            ),
            Uop::GetEflags { dst } => t[dst as usize] = core.m.eflags(),
            Uop::GetCf { dst } => t[dst as usize] = core.m.cc.cf(),
            Uop::TestCc { dst, cc } => {
                t[dst as usize] = cond_eval_lazy(&core.m, cc) as u32;
            }
            Uop::Select { dst, cond, a, b } => {
                t[dst as usize] = if t[cond as usize] != 0 {
                    t[a as usize]
                } else {
                    t[b as usize]
                };
            }
            Uop::SetEip { target } => return TbExit::Next(t[target as usize]),
            Uop::SetEipImm { target } => return TbExit::Taken(target),
            Uop::BrCc { cc, target } => {
                if cond_eval_lazy(&core.m, cc) {
                    return TbExit::Taken(target);
                }
                return TbExit::Fallthrough(core.m.eip);
            }
            Uop::BrCondT { cond, target } => {
                if t[cond as usize] != 0 {
                    return TbExit::Taken(target);
                }
                return TbExit::Fallthrough(core.m.eip);
            }
            Uop::SetCarry { mode } => {
                let f = core.m.eflags();
                let nf = match mode {
                    0 => f & !(1 << fl::CF),
                    1 => f | (1 << fl::CF),
                    _ => f ^ (1 << fl::CF),
                };
                core.m.set_eflags(nf);
            }
            Uop::SetDirection { set } => {
                let f = core.m.eflags();
                let nf = if set {
                    f | (1 << fl::DF)
                } else {
                    f & !(1 << fl::DF)
                };
                core.m.set_eflags(nf);
            }
            Uop::Raise { vector } => {
                let e = match vector {
                    1 => Exception::Db,
                    3 => Exception::Bp,
                    6 => Exception::Ud,
                    v => Exception::SoftInt(v),
                };
                fault!(core, e)
            }
            Uop::Int { vector } => fault!(core, Exception::SoftInt(vector)),
            Uop::Into => {
                if core.m.eflags() & (1 << fl::OF) != 0 {
                    fault!(core, Exception::Of)
                }
            }
            Uop::Halt => return TbExit::Halt,
            Uop::Helper(h) => match run_helper(core, h, &mut t) {
                Ok(HelperExit::Continue) => {}
                Ok(HelperExit::Jump(eip)) => return TbExit::Next(eip),
                Ok(HelperExit::Halt) => return TbExit::Halt,
                Err(e) => fault!(core, e),
            },
        }
    }
    TbExit::Fallthrough(core.m.eip)
}

enum HelperExit {
    Continue,
    Jump(u32),
    Halt,
}

fn set_status(m: &mut LofiMachine, status: u32, write_mask: u32) {
    let old = m.eflags();
    let nf = (old & !(write_mask & fl::STATUS)) | (status & write_mask & fl::STATUS);
    m.set_eflags(nf);
}

fn parity8(v: u32) -> bool {
    (v as u8).count_ones() % 2 == 0
}

fn status_of(res: u32, size: u8) -> u32 {
    let mut f = 0;
    if res & mask(size) == 0 {
        f |= 1 << fl::ZF;
    }
    if (res >> (size * 8 - 1)) & 1 != 0 {
        f |= 1 << fl::SF;
    }
    if parity8(res) {
        f |= 1 << fl::PF;
    }
    f
}

fn require_cpl0(m: &LofiMachine) -> Result<(), Exception> {
    if m.cpl() == 0 {
        Ok(())
    } else {
        Err(Exception::Gp(0))
    }
}

/// Loads a segment register with QEMU-like descriptor checks (the checks on
/// explicit loads are largely correct in QEMU — the gap is per-access
/// enforcement, handled in `mmu`). Skips the accessed-bit write-back unless
/// fixed (§6.2).
fn helper_load_seg(core: &mut Core, seg: Seg, sel: u16, kind: u8) -> Result<(), Exception> {
    let kind = u64::from(kind);
    if sel & 0xfffc == 0 {
        if kind != desc_kind::DATA {
            return Err(Exception::Gp(0));
        }
        let s = &mut core.m.segs[seg as usize];
        s.selector = sel;
        s.base = 0;
        s.limit = 0;
        s.attrs = 0;
        return Ok(());
    }
    let err = sel & 0xfffc;
    if sel & 4 != 0 {
        return Err(Exception::Gp(err)); // no LDT
    }
    let index = sel >> 3;
    if (index as u32) * 8 + 7 > core.m.gdtr.1 as u32 {
        return Err(Exception::Gp(err));
    }
    let lin = core.m.gdtr.0.wrapping_add((index as u32) << 3);
    let lo = core.lread(lin, 4)?;
    let hi = core.lread(lin + 4, 4)?;

    let s_bit = hi & (1 << 12) != 0;
    let typ = (hi >> 8) & 0xf;
    let dpl = ((hi >> 13) & 3) as u8;
    let present = hi & (1 << 15) != 0;
    let is_code = typ & 8 != 0;
    let bit1 = typ & 2 != 0;
    let conforming = typ & 4 != 0;
    let rpl = (sel & 3) as u8;
    let cpl = core.m.cpl();
    if !s_bit {
        return Err(Exception::Gp(err));
    }
    match kind {
        k if k == desc_kind::STACK => {
            if is_code || !bit1 || rpl != cpl || dpl != cpl {
                return Err(Exception::Gp(err));
            }
            if !present {
                return Err(Exception::Ss(err));
            }
        }
        k if k == desc_kind::CODE => {
            if !is_code {
                return Err(Exception::Gp(err));
            }
            if conforming {
                if dpl > cpl {
                    return Err(Exception::Gp(err));
                }
            } else if dpl != cpl {
                return Err(Exception::Gp(err));
            }
            if !present {
                return Err(Exception::Np(err));
            }
        }
        _ => {
            if is_code && !bit1 {
                return Err(Exception::Gp(err));
            }
            if !(is_code && conforming) && dpl < rpl.max(cpl) {
                return Err(Exception::Gp(err));
            }
            if !present {
                return Err(Exception::Np(err));
            }
        }
    }
    if core.fid.set_accessed_bit && hi & (1 << 8) == 0 {
        core.lwrite(lin + 4, hi | (1 << 8), 4)?;
    }
    let base = ((lo >> 16) & 0xffff) | ((hi & 0xff) << 16) | (hi & 0xff00_0000);
    let raw_limit = (lo & 0xffff) | (hi & 0xf_0000);
    let g = hi & (1 << 23) != 0;
    let limit = if g {
        (raw_limit << 12) | 0xfff
    } else {
        raw_limit
    };
    let s = &mut core.m.segs[seg as usize];
    s.selector = sel;
    s.base = base;
    s.limit = limit;
    s.attrs = ((hi >> 8) & 0xfff) as u16;
    Ok(())
}

fn push32(core: &mut Core, val: u32, size: u8) -> Result<(), Exception> {
    let esp = core.m.gpr[4].wrapping_sub(size as u32);
    core.vwrite(Seg::Ss, esp, val, size)?;
    core.m.gpr[4] = esp;
    Ok(())
}

fn pop32(core: &mut Core, size: u8) -> Result<u32, Exception> {
    let esp = core.m.gpr[4];
    let v = core.vread(Seg::Ss, esp, size)?;
    core.m.gpr[4] = esp.wrapping_add(size as u32);
    Ok(v)
}

fn write_eflags_checked(core: &mut Core, new: u32, size: u8) {
    let old = core.m.eflags();
    let new32 = if size == 2 {
        (old & 0xffff_0000) | (new & 0xffff)
    } else {
        new
    };
    let cpl = core.m.cpl() as u32;
    let iopl = (old >> fl::IOPL) & 3;
    let mut mask = fl::WRITABLE & !(1 << fl::IF) & !(3 << fl::IOPL);
    if size == 2 {
        mask &= 0xffff;
    }
    let mut out = (new32 & mask) | (old & !mask);
    if cpl <= iopl {
        out = (out & !(1 << fl::IF)) | (new32 & (1 << fl::IF));
    } else {
        out = (out & !(1 << fl::IF)) | (old & (1 << fl::IF));
    }
    if cpl == 0 {
        out = (out & !(3 << fl::IOPL)) | (new32 & (3 << fl::IOPL));
    } else {
        out = (out & !(3 << fl::IOPL)) | (old & (3 << fl::IOPL));
    }
    core.m.set_eflags(out | fl::FIXED_ONE);
}

#[allow(clippy::too_many_lines)]
fn run_helper(core: &mut Core, h: Helper, t: &mut [u32; 256]) -> Result<HelperExit, Exception> {
    match h {
        Helper::LoadSeg { seg, sel, kind } => {
            helper_load_seg(core, seg, t[sel as usize] as u16, kind)?;
            Ok(HelperExit::Continue)
        }
        Helper::PopSeg { seg, size } => {
            let v = pop32(core, size)?;
            let kind = if seg == Seg::Ss {
                desc_kind::STACK
            } else {
                desc_kind::DATA
            } as u8;
            if let Err(e) = helper_load_seg(core, seg, v as u16, kind) {
                core.m.gpr[4] = core.m.gpr[4].wrapping_sub(size as u32);
                return Err(e);
            }
            Ok(HelperExit::Continue)
        }
        Helper::PushF { size } => {
            let f = core.m.eflags() & !((1 << fl::VM) | (1 << fl::RF));
            push32(core, f & mask(size), size)?;
            Ok(HelperExit::Continue)
        }
        Helper::PopF { size } => {
            let v = pop32(core, size)?;
            write_eflags_checked(core, v, size);
            Ok(HelperExit::Continue)
        }
        Helper::Sahf => {
            let ah = read_reg(&core.m, 4, 1);
            const M: u32 =
                (1 << fl::SF) | (1 << fl::ZF) | (1 << fl::AF) | (1 << fl::PF) | (1 << fl::CF);
            let old = core.m.eflags();
            core.m.set_eflags((old & !M) | (ah & M) | fl::FIXED_ONE);
            Ok(HelperExit::Continue)
        }
        Helper::Shift {
            g,
            size,
            val,
            count,
            out,
        } => {
            let w = (size * 8) as u32;
            let v = t[val as usize] & mask(size);
            let c = t[count as usize] & 0x1f;
            if c == 0 {
                t[out as usize] = v;
                return Ok(HelperExit::Continue);
            }
            let old_cf = (core.m.eflags() >> fl::CF) & 1;
            let (res, cf, of) = match g {
                4 | 6 => {
                    let res = if c >= w { 0 } else { v << c };
                    let cf = if c > w { 0 } else { (v >> (w - c)) & 1 };
                    let of = ((res >> (w - 1)) & 1) ^ cf;
                    (res, cf, of)
                }
                5 => {
                    let res = if c >= w { 0 } else { v >> c };
                    let cf = if c > w { 0 } else { (v >> (c - 1)) & 1 };
                    let of = (v >> (w - 1)) & 1;
                    (res, cf, of)
                }
                7 => {
                    let sx = ((v << (32 - w)) as i32) >> (32 - w);
                    let res = if c >= w {
                        (sx >> 31) as u32
                    } else {
                        (sx >> c) as u32
                    };
                    let cf = if c > w {
                        (sx >> 31) as u32 & 1
                    } else {
                        ((sx >> (c - 1)) as u32) & 1
                    };
                    (res, cf, 0)
                }
                0 => {
                    let k = c % w;
                    let res = if k == 0 { v } else { (v << k) | (v >> (w - k)) };
                    let cf = res & 1;
                    let of = ((res >> (w - 1)) & 1) ^ cf;
                    (res, cf, of)
                }
                1 => {
                    let k = c % w;
                    let res = if k == 0 { v } else { (v >> k) | (v << (w - k)) };
                    let cf = (res >> (w - 1)) & 1;
                    let of = cf ^ ((res >> (w - 2)) & 1);
                    (res, cf, of)
                }
                _ => {
                    // rcl/rcr through carry, modulo w+1 (64-bit staging).
                    let wide = ((old_cf as u64) << w) | v as u64;
                    let w1 = w + 1;
                    let k = c % w1;
                    let rot = if k == 0 {
                        wide
                    } else if g == 2 {
                        ((wide << k) | (wide >> (w1 - k))) & ((1u64 << w1) - 1)
                    } else {
                        ((wide >> k) | (wide << (w1 - k))) & ((1u64 << w1) - 1)
                    };
                    let res = (rot & ((1u64 << w) - 1)) as u32;
                    let cf = ((rot >> w) & 1) as u32;
                    let of = if g == 2 {
                        ((res >> (w - 1)) & 1) ^ cf
                    } else {
                        ((res >> (w - 1)) & 1) ^ ((res >> (w - 2)) & 1)
                    };
                    (res, cf, of)
                }
            };
            let res = res & mask(size);
            t[out as usize] = res;
            let is_rotate = g <= 3;
            let old = core.m.eflags();
            let mut status = if is_rotate {
                old & fl::STATUS
            } else {
                // Lazy-flag materialization defines all bits, including the
                // architecturally-undefined AF (kept 0) — a QEMU-like choice.
                status_of(res, size)
            };
            status = (status & !(1 << fl::CF)) | (cf << fl::CF);
            status = (status & !(1 << fl::OF)) | (of << fl::OF);
            if !is_rotate {
                status &= !(1 << fl::AF);
            }
            set_status(
                &mut core.m,
                status,
                if is_rotate {
                    (1 << fl::CF) | (1 << fl::OF)
                } else {
                    fl::STATUS
                },
            );
            Ok(HelperExit::Continue)
        }
        Helper::ShiftD {
            left,
            size,
            dst,
            src,
            count,
            out,
        } => {
            let w = (size * 8) as u32;
            let a = t[dst as usize] & mask(size);
            let b = t[src as usize] & mask(size);
            let c = t[count as usize] & 0x1f;
            if c == 0 {
                t[out as usize] = a;
                return Ok(HelperExit::Continue);
            }
            let wide: u64 = if left {
                ((a as u64) << w) | b as u64
            } else {
                ((b as u64) << w) | a as u64
            };
            let (res, cf) = if left {
                let sh = wide << c;
                (
                    ((sh >> w) & mask(size) as u64) as u32,
                    ((wide >> (2 * w as u64 - c as u64)) & 1) as u32,
                )
            } else {
                let sh = wide >> c;
                (
                    (sh & mask(size) as u64) as u32,
                    ((wide >> (c - 1)) & 1) as u32,
                )
            };
            t[out as usize] = res;
            let of = ((res >> (w - 1)) & 1) ^ ((a >> (w - 1)) & 1);
            let mut status = status_of(res, size);
            status |= cf << fl::CF;
            status |= of << fl::OF;
            set_status(&mut core.m, status, fl::STATUS);
            Ok(HelperExit::Continue)
        }
        Helper::MulDiv { g, size, val } => {
            let w = (size * 8) as u32;
            let v = (t[val as usize] & mask(size)) as u64;
            match g {
                4 | 5 => {
                    let acc = read_reg(&core.m, 0, size) as u64;
                    let (full, over) = if g == 4 {
                        let full = acc * v;
                        (full, (full >> w) != 0)
                    } else {
                        let sa = sext64(acc, w);
                        let sb = sext64(v, w);
                        let full_i = sa.wrapping_mul(sb); // w <= 32: no i64 overflow
                        let full = full_i as u64;
                        let lo = full & ((1u64 << w) - 1);
                        (full, sext64(lo, w) != full_i)
                    };
                    let lo = (full & ((1u64 << w) - 1)) as u32;
                    let hi = ((full >> w) & ((1u64 << w) - 1)) as u32;
                    if size == 1 {
                        write_reg(&mut core.m, 0, 2, (hi << 8) | lo);
                    } else {
                        write_reg(&mut core.m, 0, size, lo);
                        write_reg(&mut core.m, 2, size, hi);
                    }
                    // QEMU defines all flags from the low result.
                    let mut status = status_of(lo, size);
                    if over {
                        status |= (1 << fl::CF) | (1 << fl::OF);
                    }
                    set_status(&mut core.m, status, fl::STATUS);
                }
                _ => {
                    if v == 0 {
                        return Err(Exception::De);
                    }
                    let dividend: u64 = if size == 1 {
                        read_reg(&core.m, 0, 2) as u64
                    } else {
                        ((read_reg(&core.m, 2, size) as u64) << w)
                            | read_reg(&core.m, 0, size) as u64
                    };
                    let (q, r) = if g == 6 {
                        let q = dividend / v;
                        if q > ((1u64 << w) - 1) {
                            return Err(Exception::De);
                        }
                        (q, dividend % v)
                    } else {
                        let sd = sext64(dividend, 2 * w as u32);
                        let sv = sext64(v, w);
                        let q = sd.wrapping_div(sv);
                        let r = sd.wrapping_rem(sv);
                        let min = -(1i64 << (w - 1));
                        let max = (1i64 << (w - 1)) - 1;
                        if q < min || q > max {
                            return Err(Exception::De);
                        }
                        (q as u64, r as u64)
                    };
                    let qm = (q & ((1u64 << w) - 1)) as u32;
                    let rm = (r & ((1u64 << w) - 1)) as u32;
                    if size == 1 {
                        write_reg(&mut core.m, 0, 2, (rm << 8) | qm);
                    } else {
                        write_reg(&mut core.m, 0, size, qm);
                        write_reg(&mut core.m, 2, size, rm);
                    }
                    // QEMU leaves flags untouched after division — the
                    // reference writes (model-defined) values: a natural
                    // undefined-flag divergence (§6.2).
                }
            }
            Ok(HelperExit::Continue)
        }
        Helper::Imul2 { size, a, b, out } => {
            let w = (size * 8) as u32;
            let x = sext64(t[a as usize] as u64 & mask(size) as u64, w);
            let y = sext64(t[b as usize] as u64 & mask(size) as u64, w);
            let full = x.wrapping_mul(y);
            let lo = (full as u64 & mask(size) as u64) as u32;
            let over = sext64(lo as u64, w) != full;
            t[out as usize] = lo;
            let mut status = status_of(lo, size);
            if over {
                status |= (1 << fl::CF) | (1 << fl::OF);
            }
            set_status(&mut core.m, status, fl::STATUS);
            Ok(HelperExit::Continue)
        }
        Helper::CmpxchgMem {
            size,
            seg,
            addr,
            src_reg,
        } => {
            let a = t[addr as usize];
            let dest = core.vread(seg, a, size)?;
            let acc = read_reg(&core.m, 0, size);
            let equal = acc == dest;
            let diff = acc.wrapping_sub(dest);
            core.m.cc = CcState {
                op: CcOp::Sub,
                size,
                dst: diff & mask(size),
                src1: acc,
                src2: dest,
                src3: 0,
            };
            if core.fid.atomic_cmpxchg {
                // Fixed ordering: write check first, then accumulator.
                let newv = if equal {
                    read_reg(&core.m, src_reg, size)
                } else {
                    dest
                };
                core.vwrite(seg, a, newv, size)?;
                if !equal {
                    write_reg(&mut core.m, 0, size, dest);
                }
            } else {
                // QEMU ordering: the accumulator is updated before the write
                // permission is known (§6.2).
                if !equal {
                    write_reg(&mut core.m, 0, size, dest);
                }
                let newv = if equal {
                    read_reg(&core.m, src_reg, size)
                } else {
                    dest
                };
                core.vwrite(seg, a, newv, size)?;
            }
            Ok(HelperExit::Continue)
        }
        Helper::CmpxchgReg { size, rm, src_reg } => {
            let dest = read_reg(&core.m, rm, size);
            let acc = read_reg(&core.m, 0, size);
            let equal = acc == dest;
            let diff = acc.wrapping_sub(dest);
            core.m.cc = CcState {
                op: CcOp::Sub,
                size,
                dst: diff & mask(size),
                src1: acc,
                src2: dest,
                src3: 0,
            };
            if equal {
                let v = read_reg(&core.m, src_reg, size);
                write_reg(&mut core.m, rm, size, v);
            } else {
                write_reg(&mut core.m, 0, size, dest);
            }
            Ok(HelperExit::Continue)
        }
        Helper::BitOpMem {
            action,
            size,
            seg,
            addr,
            bitoff,
            reg_offset,
        } => {
            let w = (size * 8) as u32;
            let off = t[bitoff as usize];
            let base = t[addr as usize];
            let (a, bit) = if reg_offset {
                let word = ((off as i32) >> if w == 16 { 4 } else { 5 }) as u32;
                let byte_off = word.wrapping_mul(size as u32);
                (base.wrapping_add(byte_off), off & (w - 1))
            } else {
                (base, off & (w - 1))
            };
            let v = core.vread(seg, a, size)?;
            let cf = (v >> bit) & 1;
            let nv = match action {
                1 => v | (1 << bit),
                2 => v & !(1 << bit),
                3 => v ^ (1 << bit),
                _ => v,
            };
            if action != 0 {
                core.vwrite(seg, a, nv, size)?;
            }
            let old = core.m.eflags() & fl::STATUS;
            set_status(
                &mut core.m,
                (old & !(1 << fl::CF)) | (cf << fl::CF),
                fl::STATUS,
            );
            Ok(HelperExit::Continue)
        }
        Helper::BitOpReg {
            action,
            size,
            rm,
            bitoff,
        } => {
            let w = (size * 8) as u32;
            let bit = t[bitoff as usize] & (w - 1);
            let v = read_reg(&core.m, rm, size);
            let cf = (v >> bit) & 1;
            let nv = match action {
                1 => v | (1 << bit),
                2 => v & !(1 << bit),
                3 => v ^ (1 << bit),
                _ => v,
            };
            if action != 0 {
                write_reg(&mut core.m, rm, size, nv);
            }
            let old = core.m.eflags() & fl::STATUS;
            set_status(
                &mut core.m,
                (old & !(1 << fl::CF)) | (cf << fl::CF),
                fl::STATUS,
            );
            Ok(HelperExit::Continue)
        }
        Helper::BsfBsr {
            forward,
            size,
            src,
            dst_reg,
        } => {
            let v = t[src as usize] & mask(size);
            let mut status = core.m.eflags() & fl::STATUS;
            if v == 0 {
                status |= 1 << fl::ZF;
                // Lo-Fi behavior: writes 0 on a zero source (the reference
                // leaves the destination unchanged) — undefined territory.
                write_reg(&mut core.m, dst_reg, size, 0);
            } else {
                status &= !(1 << fl::ZF);
                let pos = if forward {
                    v.trailing_zeros()
                } else {
                    31 - v.leading_zeros()
                };
                write_reg(&mut core.m, dst_reg, size, pos);
            }
            set_status(&mut core.m, status, fl::STATUS);
            Ok(HelperExit::Continue)
        }
        Helper::Bcd { opcode, imm } => {
            helper_bcd(core, opcode, imm)?;
            Ok(HelperExit::Continue)
        }
        Helper::StringOp {
            opcode,
            size,
            rep,
            seg,
        } => {
            helper_string(core, opcode, size, rep, seg)?;
            Ok(HelperExit::Continue)
        }
        Helper::Iret { size } => {
            // Read order depends on fidelity: QEMU reads outermost-first
            // (EFLAGS, CS, EIP); hardware reads innermost-first (§6.2).
            let esp = core.m.gpr[4];
            let (eip_v, cs_v, flags_v);
            if core.fid.iret_ascending {
                eip_v = core.vread(Seg::Ss, esp, size)?;
                cs_v = core.vread(Seg::Ss, esp.wrapping_add(size as u32), size)?;
                flags_v = core.vread(Seg::Ss, esp.wrapping_add(2 * size as u32), size)?;
            } else {
                flags_v = core.vread(Seg::Ss, esp.wrapping_add(2 * size as u32), size)?;
                cs_v = core.vread(Seg::Ss, esp.wrapping_add(size as u32), size)?;
                eip_v = core.vread(Seg::Ss, esp, size)?;
            }
            helper_load_seg(core, Seg::Cs, cs_v as u16, desc_kind::CODE as u8)?;
            core.m.gpr[4] = esp.wrapping_add(3 * size as u32);
            write_eflags_checked(core, flags_v, size);
            Ok(HelperExit::Jump(eip_v & mask(size)))
        }
        Helper::RetFar { size, extra } => {
            let esp = core.m.gpr[4];
            let eip_v = core.vread(Seg::Ss, esp, size)?;
            let cs_v = core.vread(Seg::Ss, esp.wrapping_add(size as u32), size)?;
            helper_load_seg(core, Seg::Cs, cs_v as u16, desc_kind::CODE as u8)?;
            core.m.gpr[4] = esp.wrapping_add(2 * size as u32).wrapping_add(extra as u32);
            Ok(HelperExit::Jump(eip_v & mask(size)))
        }
        Helper::FarXfer {
            call,
            sel,
            off,
            size,
        } => {
            let sel_v = t[sel as usize] as u16;
            let off_v = t[off as usize] & mask(size);
            let old_cs = core.m.segs[Seg::Cs as usize].selector as u32;
            let old_eip = core.m.eip;
            helper_load_seg(core, Seg::Cs, sel_v, desc_kind::CODE as u8)?;
            if call {
                push32(core, old_cs & mask(size), size)?;
                push32(core, old_eip & mask(size), size)?;
            }
            Ok(HelperExit::Jump(off_v))
        }
        Helper::Enter { size, alloc, level } => {
            let ebp = read_reg(&core.m, 5, size);
            push32(core, ebp, size)?;
            let frame = core.m.gpr[4];
            if level > 0 {
                for i in 1..level {
                    let src = core.m.gpr[5].wrapping_sub(i as u32 * size as u32);
                    let v = core.vread(Seg::Ss, src, size)?;
                    push32(core, v, size)?;
                }
                push32(core, frame & mask(size), size)?;
            }
            write_reg(&mut core.m, 5, size, frame);
            core.m.gpr[4] = core.m.gpr[4].wrapping_sub(alloc as u32);
            Ok(HelperExit::Continue)
        }
        Helper::Bound {
            size,
            reg,
            addr,
            seg,
        } => {
            let idx = read_reg(&core.m, reg, size);
            let a = t[addr as usize];
            let lower = core.vread(seg, a, size)?;
            let upper = core.vread(seg, a.wrapping_add(size as u32), size)?;
            let w = (size * 8) as u32;
            let s = |v: u32| sext64(v as u64, w);
            if s(idx) < s(lower) || s(idx) > s(upper) {
                return Err(Exception::Br);
            }
            Ok(HelperExit::Continue)
        }
        Helper::Arpl { dst, src, out } => {
            let d = t[dst as usize] & 0xffff;
            let s = t[src as usize] & 0xffff;
            let adjusted = (d & 3) < (s & 3);
            t[out as usize] = if adjusted { (d & !3) | (s & 3) } else { d };
            let old = core.m.eflags() & fl::STATUS;
            let status = if adjusted {
                old | (1 << fl::ZF)
            } else {
                old & !(1 << fl::ZF)
            };
            set_status(&mut core.m, status, fl::STATUS);
            Ok(HelperExit::Continue)
        }
        Helper::MovCr { write, crn, reg } => {
            require_cpl0(&core.m)?;
            if write {
                let v = core.m.gpr[reg as usize];
                match crn {
                    0 => {
                        if v & (1 << cr0::PG) != 0 && v & (1 << cr0::PE) == 0 {
                            return Err(Exception::Gp(0));
                        }
                        core.m.cr0 = v;
                        core.tlb.flush();
                    }
                    2 => core.m.cr2 = v,
                    3 => {
                        core.m.cr3 = v;
                        core.tlb.flush();
                    }
                    4 => {
                        if v & (1 << cr4::PAE) != 0 {
                            return Err(Exception::Gp(0));
                        }
                        core.m.cr4 = v;
                        core.tlb.flush();
                    }
                    _ => return Err(Exception::Ud),
                }
            } else {
                let v = match crn {
                    0 => core.m.cr0 | (1 << cr0::ET),
                    2 => core.m.cr2,
                    3 => core.m.cr3,
                    4 => core.m.cr4,
                    _ => return Err(Exception::Ud),
                };
                core.m.gpr[reg as usize] = v;
            }
            Ok(HelperExit::Continue)
        }
        Helper::DescTable { which, addr, seg } => {
            let a = t[addr as usize];
            match which {
                0 | 1 => {
                    let (base, limit) = if which == 0 {
                        (core.m.gdtr.0, core.m.gdtr.1)
                    } else {
                        (core.m.idtr.0, core.m.idtr.1)
                    };
                    core.vwrite(seg, a, limit as u32, 2)?;
                    core.vwrite(seg, a.wrapping_add(2), base, 4)?;
                }
                _ => {
                    require_cpl0(&core.m)?;
                    let limit = core.vread(seg, a, 2)? as u16;
                    let base = core.vread(seg, a.wrapping_add(2), 4)?;
                    if which == 2 {
                        core.m.gdtr = (base, limit);
                    } else {
                        core.m.idtr = (base, limit);
                    }
                }
            }
            Ok(HelperExit::Continue)
        }
        Helper::Smsw { out } => {
            t[out as usize] = (core.m.cr0 & 0xffff) | (1 << cr0::ET);
            Ok(HelperExit::Continue)
        }
        Helper::Lmsw { val } => {
            require_cpl0(&core.m)?;
            let v = t[val as usize] & 0xf;
            let pe = (core.m.cr0 | v) & 1; // PE is sticky
            core.m.cr0 = (core.m.cr0 & !0xf) | (v & 0xe) | pe;
            Ok(HelperExit::Continue)
        }
        Helper::Msr { write } => {
            require_cpl0(&core.m)?;
            let addr = core.m.gpr[1]; // ecx
            let valid = VALID_MSRS.contains(&addr);
            if !valid {
                if core.fid.msr_gp_on_invalid {
                    return Err(Exception::Gp(0));
                }
                // QEMU-like: reads return 0, writes are dropped (§6.2).
                if !write {
                    core.m.gpr[0] = 0;
                    core.m.gpr[2] = 0;
                }
                return Ok(HelperExit::Continue);
            }
            if write {
                match addr {
                    0x10 => core.m.tsc = ((core.m.gpr[2] as u64) << 32) | core.m.gpr[0] as u64,
                    0x174 => core.m.msrs[0] = core.m.gpr[0],
                    0x175 => core.m.msrs[1] = core.m.gpr[0],
                    _ => core.m.msrs[2] = core.m.gpr[0],
                }
            } else {
                let (lo, hi) = match addr {
                    0x10 => (core.m.tsc as u32, (core.m.tsc >> 32) as u32),
                    0x174 => (core.m.msrs[0], 0),
                    0x175 => (core.m.msrs[1], 0),
                    _ => (core.m.msrs[2], 0),
                };
                core.m.gpr[0] = lo;
                core.m.gpr[2] = hi;
            }
            Ok(HelperExit::Continue)
        }
        Helper::Rdtsc => {
            if core.m.cr4 & (1 << cr4::TSD) != 0 && core.m.cpl() != 0 {
                return Err(Exception::Gp(0));
            }
            core.m.gpr[0] = core.m.tsc as u32;
            core.m.gpr[2] = (core.m.tsc >> 32) as u32;
            core.m.tsc = core.m.tsc.wrapping_add(1);
            Ok(HelperExit::Continue)
        }
        Helper::Cpuid => {
            if core.m.gpr[0] == 0 {
                core.m.gpr[0] = 1;
                core.m.gpr[3] = u32::from_le_bytes(*b"VX86");
                core.m.gpr[2] = u32::from_le_bytes(*b"Poke");
                core.m.gpr[1] = u32::from_le_bytes(*b"EMUr");
            } else {
                core.m.gpr[0] = 0x0000_0611;
                core.m.gpr[3] = 0;
                core.m.gpr[1] = 0;
                core.m.gpr[2] = (1 << 3) | (1 << 4) | (1 << 5) | (1 << 15);
            }
            Ok(HelperExit::Continue)
        }
        Helper::LarLsl {
            is_lsl,
            sel,
            dst_reg,
            size,
        } => {
            let sel_v = t[sel as usize] as u16;
            let r = helper_desc_query(core, sel_v)?;
            let mut status = core.m.eflags() & fl::STATUS;
            match r {
                None => status &= !(1 << fl::ZF),
                Some((lo, hi)) => {
                    status |= 1 << fl::ZF;
                    let v = if is_lsl {
                        let raw = (lo & 0xffff) | (hi & 0xf_0000);
                        if hi & (1 << 23) != 0 {
                            (raw << 12) | 0xfff
                        } else {
                            raw
                        }
                    } else {
                        hi & 0x00f0_ff00
                    };
                    write_reg(&mut core.m, dst_reg, size, v & mask(size));
                }
            }
            set_status(&mut core.m, status, fl::STATUS);
            Ok(HelperExit::Continue)
        }
        Helper::Verrw { write, sel } => {
            let sel_v = t[sel as usize] as u16;
            let r = helper_desc_query(core, sel_v)?;
            let ok = match r {
                None => false,
                Some((_lo, hi)) => {
                    let is_code = hi & (1 << 11) != 0;
                    let bit1 = hi & (1 << 9) != 0;
                    if write {
                        !is_code && bit1
                    } else {
                        !is_code || bit1
                    }
                }
            };
            let old = core.m.eflags() & fl::STATUS;
            let status = if ok {
                old | (1 << fl::ZF)
            } else {
                old & !(1 << fl::ZF)
            };
            set_status(&mut core.m, status, fl::STATUS);
            Ok(HelperExit::Continue)
        }
        Helper::SldtStr { out } => {
            t[out as usize] = 0;
            Ok(HelperExit::Continue)
        }
        Helper::LldtLtr { sel } => {
            require_cpl0(&core.m)?;
            let sel_v = t[sel as usize] as u16;
            if sel_v & 0xfffc != 0 {
                return Err(Exception::Gp(sel_v & 0xfffc));
            }
            Ok(HelperExit::Continue)
        }
        Helper::Clts => {
            require_cpl0(&core.m)?;
            core.m.cr0 &= !(1 << cr0::TS);
            Ok(HelperExit::Continue)
        }
        Helper::CliSti { enable } => {
            let f = core.m.eflags();
            let cpl = core.m.cpl() as u32;
            let iopl = (f >> fl::IOPL) & 3;
            if cpl > iopl {
                return Err(Exception::Gp(0));
            }
            let nf = if enable {
                f | (1 << fl::IF)
            } else {
                f & !(1 << fl::IF)
            };
            core.m.set_eflags(nf);
            Ok(HelperExit::Continue)
        }
        Helper::Invlpg => {
            require_cpl0(&core.m)?;
            core.tlb.flush();
            Ok(HelperExit::Continue)
        }
        Helper::CacheOp => {
            require_cpl0(&core.m)?;
            Ok(HelperExit::Continue)
        }
        Helper::Hlt => {
            require_cpl0(&core.m)?;
            Ok(HelperExit::Halt)
        }
    }
}

fn sext64(v: u64, w: u32) -> i64 {
    let shift = 64 - w;
    ((v << shift) as i64) >> shift
}

/// Shared descriptor fetch for lar/lsl/verr/verw: returns the raw halves if
/// the selector names an accessible descriptor.
fn helper_desc_query(core: &mut Core, sel: u16) -> Result<Option<(u32, u32)>, Exception> {
    if sel & 0xfffc == 0 || sel & 4 != 0 {
        return Ok(None);
    }
    let index = sel >> 3;
    if (index as u32) * 8 + 7 > core.m.gdtr.1 as u32 {
        return Ok(None);
    }
    let lin = core.m.gdtr.0.wrapping_add((index as u32) << 3);
    let lo = core.lread(lin, 4)?;
    let hi = core.lread(lin + 4, 4)?;
    let s = hi & (1 << 12) != 0;
    let p = hi & (1 << 15) != 0;
    let dpl = ((hi >> 13) & 3) as u8;
    let is_code = hi & (1 << 11) != 0;
    let conforming = hi & (1 << 10) != 0;
    let rpl = (sel & 3) as u8;
    let cpl = core.m.cpl();
    let priv_ok = dpl >= rpl.max(cpl) || (is_code && conforming);
    if s && p && priv_ok {
        Ok(Some((lo, hi)))
    } else {
        Ok(None)
    }
}

fn helper_bcd(core: &mut Core, opcode: u16, imm: u8) -> Result<(), Exception> {
    let al = read_reg(&core.m, 0, 1);
    let ah = read_reg(&core.m, 4, 1);
    let f = core.m.eflags();
    let cf_in = (f >> fl::CF) & 1 != 0;
    let af_in = (f >> fl::AF) & 1 != 0;
    match opcode {
        0x27 | 0x2f => {
            let is_add = opcode == 0x27;
            let adjust_lo = (al & 0xf) > 9 || af_in;
            let adjust_hi = al > 0x99 || cf_in;
            let mut v = al;
            if adjust_lo {
                v = if is_add {
                    v.wrapping_add(6)
                } else {
                    v.wrapping_sub(6)
                } & 0xff;
            }
            if adjust_hi {
                v = if is_add {
                    v.wrapping_add(0x60)
                } else {
                    v.wrapping_sub(0x60)
                } & 0xff;
            }
            write_reg(&mut core.m, 0, 1, v);
            let mut status = status_of(v, 1);
            if adjust_hi {
                status |= 1 << fl::CF;
            }
            if adjust_lo {
                status |= 1 << fl::AF;
            }
            set_status(&mut core.m, status, fl::STATUS);
        }
        0x37 | 0x3f => {
            let is_add = opcode == 0x37;
            let adjust = (al & 0xf) > 9 || af_in;
            let (nal, nah) = if adjust {
                if is_add {
                    ((al.wrapping_add(6)) & 0xf, ah.wrapping_add(1) & 0xff)
                } else {
                    ((al.wrapping_sub(6)) & 0xf, ah.wrapping_sub(1) & 0xff)
                }
            } else {
                (al & 0xf, ah)
            };
            write_reg(&mut core.m, 0, 1, nal);
            write_reg(&mut core.m, 4, 1, nah);
            let status = if adjust {
                (1 << fl::CF) | (1 << fl::AF)
            } else {
                0
            };
            set_status(&mut core.m, status, fl::STATUS);
        }
        0xd4 => {
            if imm == 0 {
                return Err(Exception::De);
            }
            let q = al / imm as u32;
            let r = al % imm as u32;
            write_reg(&mut core.m, 0, 1, r);
            write_reg(&mut core.m, 4, 1, q);
            set_status(&mut core.m, status_of(r, 1), fl::STATUS);
        }
        _ => {
            let v = al.wrapping_add(ah.wrapping_mul(imm as u32)) & 0xff;
            write_reg(&mut core.m, 0, 1, v);
            write_reg(&mut core.m, 4, 1, 0);
            set_status(&mut core.m, status_of(v, 1), fl::STATUS);
        }
    }
    Ok(())
}

fn helper_string(
    core: &mut Core,
    opcode: u16,
    size: u8,
    rep: u8,
    seg: Seg,
) -> Result<(), Exception> {
    const MAX_ITER: u32 = 4096;
    let mut iter = 0;
    loop {
        if rep != 0 && core.m.gpr[1] == 0 {
            break;
        }
        let df = core.m.eflags() & (1 << fl::DF) != 0;
        let delta = if df {
            (size as u32).wrapping_neg()
        } else {
            size as u32
        };
        let esi = core.m.gpr[6];
        let edi = core.m.gpr[7];
        match opcode {
            0xa4 | 0xa5 => {
                let v = core.vread(seg, esi, size)?;
                core.vwrite(Seg::Es, edi, v, size)?;
                core.m.gpr[6] = esi.wrapping_add(delta);
                core.m.gpr[7] = edi.wrapping_add(delta);
            }
            0xa6 | 0xa7 => {
                let a = core.vread(seg, esi, size)?;
                let b = core.vread(Seg::Es, edi, size)?;
                let diff = a.wrapping_sub(b);
                core.m.cc = CcState {
                    op: CcOp::Sub,
                    size,
                    dst: diff & mask(size),
                    src1: a,
                    src2: b,
                    src3: 0,
                };
                core.m.gpr[6] = esi.wrapping_add(delta);
                core.m.gpr[7] = edi.wrapping_add(delta);
            }
            0xaa | 0xab => {
                let v = read_reg(&core.m, 0, size);
                core.vwrite(Seg::Es, edi, v, size)?;
                core.m.gpr[7] = edi.wrapping_add(delta);
            }
            0xac | 0xad => {
                let v = core.vread(seg, esi, size)?;
                write_reg(&mut core.m, 0, size, v);
                core.m.gpr[6] = esi.wrapping_add(delta);
            }
            _ => {
                let a = read_reg(&core.m, 0, size);
                let b = core.vread(Seg::Es, edi, size)?;
                let diff = a.wrapping_sub(b);
                core.m.cc = CcState {
                    op: CcOp::Sub,
                    size,
                    dst: diff & mask(size),
                    src1: a,
                    src2: b,
                    src3: 0,
                };
                core.m.gpr[7] = edi.wrapping_add(delta);
            }
        }
        if rep == 0 {
            break;
        }
        core.m.gpr[1] = core.m.gpr[1].wrapping_sub(1);
        if matches!(opcode, 0xa6 | 0xa7 | 0xae | 0xaf) {
            let zf = core.m.eflags() & (1 << fl::ZF) != 0;
            if (rep == 1 && !zf) || (rep == 2 && zf) {
                break;
            }
        }
        iter += 1;
        if iter >= MAX_ITER {
            break;
        }
    }
    Ok(())
}
