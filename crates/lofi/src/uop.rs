//! The Lo-Fi micro-op intermediate representation.
//!
//! The translator lowers each guest instruction to a short sequence of
//! micro-ops; the executor runs them against the machine state. Because
//! micro-ops commit eagerly — there is no instruction-level transaction —
//! a fault in the middle of a sequence leaves earlier micro-ops' effects
//! visible. That is the *mechanism* behind the atomicity violations the
//! paper finds in QEMU (§6.2): the bug is an emergent property of the
//! translation scheme, not a special case.

use pokemu_isa::state::Seg;

/// A temporary register index inside one translation block.
pub type T = u8;

/// Binary ALU operations on temporaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AluKind {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Sar,
}

/// Lazy condition-code updates attached to results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CcKind {
    Logic,
    Add,
    Adc,
    Sub,
    Sbb,
    Inc,
    Dec,
}

/// Helper invocations: complex or system instructions implemented out of
/// line (QEMU's `helper_*` functions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Helper {
    /// Load a segment register with descriptor checks. `kind` follows
    /// [`pokemu_isa::translate::desc_kind`].
    LoadSeg {
        /// Target segment.
        seg: Seg,
        /// Temp holding the selector.
        sel: T,
        /// Load kind.
        kind: u8,
    },
    /// Pop into a segment register (ESP rollback on fault).
    PopSeg {
        /// Target segment.
        seg: Seg,
        /// Operand size.
        size: u8,
    },
    /// `pushf` / `popf`.
    PushF {
        /// Operand size.
        size: u8,
    },
    /// `popf` with privilege rules.
    PopF {
        /// Operand size.
        size: u8,
    },
    /// `sahf`.
    Sahf,
    /// Shift/rotate group: computes result and flags from `val`/`count`,
    /// leaving the result in `out`.
    Shift {
        /// Sub-opcode (group reg field).
        g: u8,
        /// Operand size.
        size: u8,
        /// Temp: value.
        val: T,
        /// Temp: count.
        count: T,
        /// Temp: result written here.
        out: T,
    },
    /// `shld`/`shrd`.
    ShiftD {
        /// Left (`shld`) or right.
        left: bool,
        /// Operand size.
        size: u8,
        /// Temp: destination value.
        dst: T,
        /// Temp: source value.
        src: T,
        /// Temp: count.
        count: T,
        /// Temp: result.
        out: T,
    },
    /// `f6`/`f7` mul/imul/div/idiv on the accumulator.
    MulDiv {
        /// Group reg field (4..=7).
        g: u8,
        /// Operand size.
        size: u8,
        /// Temp: the r/m operand value.
        val: T,
    },
    /// Two-operand `imul`.
    Imul2 {
        /// Operand size.
        size: u8,
        /// Temp: multiplicand.
        a: T,
        /// Temp: multiplier.
        b: T,
        /// Temp: result.
        out: T,
    },
    /// `cmpxchg` on memory, with the eager-accumulator-update ordering bug.
    CmpxchgMem {
        /// Operand size.
        size: u8,
        /// Segment of the destination.
        seg: Seg,
        /// Temp: effective address.
        addr: T,
        /// Source register number.
        src_reg: u8,
    },
    /// `cmpxchg` register form.
    CmpxchgReg {
        /// Operand size.
        size: u8,
        /// Destination register.
        rm: u8,
        /// Source register.
        src_reg: u8,
    },
    /// Bit ops (`bt`/`bts`/`btr`/`btc`) with memory bit-string addressing.
    BitOpMem {
        /// 0 = bt, 1 = bts, 2 = btr, 3 = btc.
        action: u8,
        /// Operand size.
        size: u8,
        /// Segment.
        seg: Seg,
        /// Temp: base effective address.
        addr: T,
        /// Temp: bit offset (full width).
        bitoff: T,
        /// `true` when the offset is from a register (bit-string addressing).
        reg_offset: bool,
    },
    /// Bit ops on a register.
    BitOpReg {
        /// Action as above.
        action: u8,
        /// Operand size.
        size: u8,
        /// r/m register.
        rm: u8,
        /// Temp: bit offset.
        bitoff: T,
    },
    /// `bsf`/`bsr`.
    BsfBsr {
        /// Scan forward?
        forward: bool,
        /// Operand size.
        size: u8,
        /// Temp: source value.
        src: T,
        /// Destination register.
        dst_reg: u8,
    },
    /// BCD instruction (identified by opcode); `imm` for aam/aad.
    Bcd {
        /// Opcode.
        opcode: u16,
        /// Immediate (aam/aad divisor), zero otherwise.
        imm: u8,
    },
    /// String instruction, including REP handling.
    StringOp {
        /// Opcode.
        opcode: u16,
        /// Element size.
        size: u8,
        /// Repeat prefix: 0 none, 1 repe, 2 repne.
        rep: u8,
        /// Source segment (after overrides).
        seg: Seg,
    },
    /// `iret` (pop order depends on fidelity, §6.2).
    Iret {
        /// Operand size.
        size: u8,
    },
    /// Far return.
    RetFar {
        /// Operand size.
        size: u8,
        /// Extra stack adjustment.
        extra: u16,
    },
    /// Far jump/call with selector and offset in temps.
    FarXfer {
        /// Push a return frame first?
        call: bool,
        /// Temp: selector.
        sel: T,
        /// Temp: offset.
        off: T,
        /// Operand size.
        size: u8,
    },
    /// `enter`.
    Enter {
        /// Operand size.
        size: u8,
        /// Frame allocation.
        alloc: u16,
        /// Nesting level (masked to 5 bits).
        level: u8,
    },
    /// `bound`.
    Bound {
        /// Operand size.
        size: u8,
        /// Register under test.
        reg: u8,
        /// Temp: effective address of the bounds pair.
        addr: T,
        /// Segment.
        seg: Seg,
    },
    /// `arpl`: computes the adjusted selector into `out` and sets ZF.
    Arpl {
        /// Temp: destination selector value.
        dst: T,
        /// Temp: source selector value.
        src: T,
        /// Temp: result.
        out: T,
    },
    /// `mov cr, r` / `mov r, cr`.
    MovCr {
        /// Writing to the control register?
        write: bool,
        /// Control register number.
        crn: u8,
        /// GPR number.
        reg: u8,
    },
    /// `sgdt`/`sidt`/`lgdt`/`lidt` (which = group reg field).
    DescTable {
        /// Group reg field (0..=3).
        which: u8,
        /// Temp: effective address.
        addr: T,
        /// Segment.
        seg: Seg,
    },
    /// `smsw` result into temp.
    Smsw {
        /// Temp: output.
        out: T,
    },
    /// `lmsw` from temp.
    Lmsw {
        /// Temp: input.
        val: T,
    },
    /// `rdmsr`/`wrmsr` — `rdmsr` of an invalid MSR returns 0 instead of #GP
    /// unless fixed (§6.2).
    Msr {
        /// Write (wrmsr)?
        write: bool,
    },
    /// `rdtsc`.
    Rdtsc,
    /// `cpuid`.
    Cpuid,
    /// `lar`/`lsl`.
    LarLsl {
        /// `lsl`?
        is_lsl: bool,
        /// Temp: selector.
        sel: T,
        /// Destination register.
        dst_reg: u8,
        /// Operand size.
        size: u8,
    },
    /// `verr`/`verw`.
    Verrw {
        /// Verify for write?
        write: bool,
        /// Temp: selector.
        sel: T,
    },
    /// `sldt`/`str` store zero into temp.
    SldtStr {
        /// Temp: output.
        out: T,
    },
    /// `lldt`/`ltr` (null selectors only).
    LldtLtr {
        /// Temp: selector.
        sel: T,
    },
    /// `clts`.
    Clts,
    /// `cli`/`sti` with the IOPL privilege check.
    CliSti {
        /// Enable interrupts (`sti`)?
        enable: bool,
    },
    /// `invlpg` (privileged TLB flush).
    Invlpg,
    /// `invd`/`wbinvd`.
    CacheOp,
    /// `hlt` (with the privilege check).
    Hlt,
}

/// One micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Uop {
    /// Marks an instruction boundary: the executor records `cur` for fault
    /// reporting and advances EIP to `next`.
    InsnStart {
        /// Address of this instruction.
        cur: u32,
        /// Address of the next instruction.
        next: u32,
    },
    /// Loads a constant into a temp.
    Const {
        /// Destination temp.
        dst: T,
        /// Value.
        val: u32,
    },
    /// Reads a GPR (sub-register rules as in the ISA).
    ReadReg {
        /// Destination temp.
        dst: T,
        /// Register number.
        reg: u8,
        /// Size in bytes.
        size: u8,
    },
    /// Writes a GPR, preserving untouched bits.
    WriteReg {
        /// Register number.
        reg: u8,
        /// Size in bytes.
        size: u8,
        /// Source temp.
        src: T,
    },
    /// Reads a segment selector into a temp.
    ReadSel {
        /// Destination temp.
        dst: T,
        /// Segment.
        seg: Seg,
    },
    /// Binary ALU operation (shift counts pre-masked by the translator).
    Alu {
        /// Operation.
        op: AluKind,
        /// Size in bytes.
        size: u8,
        /// Destination temp.
        dst: T,
        /// Left operand.
        a: T,
        /// Right operand.
        b: T,
    },
    /// Bitwise not.
    Not {
        /// Destination temp.
        dst: T,
        /// Operand.
        a: T,
        /// Size in bytes.
        size: u8,
    },
    /// Two's-complement negate.
    Neg {
        /// Destination temp.
        dst: T,
        /// Operand.
        a: T,
        /// Size in bytes.
        size: u8,
    },
    /// Width change between byte sizes.
    Ext {
        /// Destination temp.
        dst: T,
        /// Operand.
        a: T,
        /// Source size in bytes.
        from: u8,
        /// Destination size in bytes.
        to: u8,
        /// Sign extend?
        signed: bool,
    },
    /// Byte swap (32-bit).
    Bswap {
        /// Destination temp.
        dst: T,
        /// Operand.
        a: T,
    },
    /// Fast-path memory load.
    Ld {
        /// Destination temp.
        dst: T,
        /// Segment.
        seg: Seg,
        /// Temp: offset.
        addr: T,
        /// Size in bytes.
        size: u8,
    },
    /// Fast-path memory store.
    St {
        /// Segment.
        seg: Seg,
        /// Temp: offset.
        addr: T,
        /// Temp: value.
        src: T,
        /// Size in bytes.
        size: u8,
    },
    /// Effective-address computation from register file + displacement.
    Lea {
        /// Destination temp.
        dst: T,
        /// Base register.
        base: Option<u8>,
        /// Index register and scale shift.
        index: Option<(u8, u8)>,
        /// Displacement.
        disp: u32,
    },
    /// Records a lazy condition-code update.
    SetCc {
        /// Kind.
        cc: CcKind,
        /// Size in bytes.
        size: u8,
        /// Temp: result.
        dst: T,
        /// Temp: first operand (or previous CF for Inc/Dec).
        a: T,
        /// Temp: second operand.
        b: T,
    },
    /// Materializes EFLAGS into a temp.
    GetEflags {
        /// Destination temp.
        dst: T,
    },
    /// Reads the current CF into a temp.
    GetCf {
        /// Destination temp.
        dst: T,
    },
    /// Evaluates an x86 condition code into a temp (0/1).
    TestCc {
        /// Destination temp.
        dst: T,
        /// Condition code.
        cc: u8,
    },
    /// Conditional select: `dst = cond != 0 ? a : b`.
    Select {
        /// Destination temp.
        dst: T,
        /// Condition temp.
        cond: T,
        /// Value when true.
        a: T,
        /// Value when false.
        b: T,
    },
    /// Indirect jump: EIP from a temp. Ends the block.
    SetEip {
        /// Temp: target.
        target: T,
    },
    /// Direct jump. Ends the block.
    SetEipImm {
        /// Target.
        target: u32,
    },
    /// Conditional direct branch on an x86 condition code. Ends the block.
    BrCc {
        /// Condition code.
        cc: u8,
        /// Taken target.
        target: u32,
    },
    /// Conditional direct branch on a temp. Ends the block.
    BrCondT {
        /// Condition temp.
        cond: T,
        /// Taken target.
        target: u32,
    },
    /// Out-of-line helper.
    Helper(Helper),
    /// `hlt` flows through [`Helper::Hlt`]; this is an unconditional stop
    /// used internally after helpers that end execution.
    Halt,
    /// Raise a simple exception (no error code), e.g. #UD.
    Raise {
        /// Vector number.
        vector: u8,
    },
    /// Raise a software interrupt.
    Int {
        /// Vector.
        vector: u8,
    },
    /// `into` (conditional #OF).
    Into,
    /// `clc`/`stc`/`cmc` (mode 0/1/2).
    SetCarry {
        /// 0 = clear, 1 = set, 2 = complement.
        mode: u8,
    },
    /// `cld`/`std`.
    SetDirection {
        /// New DF value.
        set: bool,
    },
}

/// Size of the `coverage.uop` bitmap (kind indices are far below this;
/// headroom for new micro-ops without resizing the committed baseline).
pub const UOP_COVERAGE_BITS: usize = 128;

impl Helper {
    /// Stable kind index of this helper, `0..=37` (payload-independent).
    pub fn kind_index(&self) -> usize {
        match self {
            Helper::LoadSeg { .. } => 0,
            Helper::PopSeg { .. } => 1,
            Helper::PushF { .. } => 2,
            Helper::PopF { .. } => 3,
            Helper::Sahf => 4,
            Helper::Shift { .. } => 5,
            Helper::ShiftD { .. } => 6,
            Helper::MulDiv { .. } => 7,
            Helper::Imul2 { .. } => 8,
            Helper::CmpxchgMem { .. } => 9,
            Helper::CmpxchgReg { .. } => 10,
            Helper::BitOpMem { .. } => 11,
            Helper::BitOpReg { .. } => 12,
            Helper::BsfBsr { .. } => 13,
            Helper::Bcd { .. } => 14,
            Helper::StringOp { .. } => 15,
            Helper::Iret { .. } => 16,
            Helper::RetFar { .. } => 17,
            Helper::FarXfer { .. } => 18,
            Helper::Enter { .. } => 19,
            Helper::Bound { .. } => 20,
            Helper::Arpl { .. } => 21,
            Helper::MovCr { .. } => 22,
            Helper::DescTable { .. } => 23,
            Helper::Smsw { .. } => 24,
            Helper::Lmsw { .. } => 25,
            Helper::Msr { .. } => 26,
            Helper::Rdtsc => 27,
            Helper::Cpuid => 28,
            Helper::LarLsl { .. } => 29,
            Helper::Verrw { .. } => 30,
            Helper::SldtStr { .. } => 31,
            Helper::LldtLtr { .. } => 32,
            Helper::Clts => 33,
            Helper::CliSti { .. } => 34,
            Helper::Invlpg => 35,
            Helper::CacheOp => 36,
            Helper::Hlt => 37,
        }
    }
}

impl Uop {
    /// Stable bit index of this micro-op's *kind* in the `coverage.uop`
    /// map: plain micro-ops occupy `0..28`, helpers `28..66` (sub-indexed
    /// by [`Helper::kind_index`] so "executed some helper" doesn't collapse
    /// 38 distinct out-of-line implementations into one bit).
    pub fn cov_index(&self) -> usize {
        match self {
            Uop::InsnStart { .. } => 0,
            Uop::Const { .. } => 1,
            Uop::ReadReg { .. } => 2,
            Uop::WriteReg { .. } => 3,
            Uop::ReadSel { .. } => 4,
            Uop::Alu { .. } => 5,
            Uop::Not { .. } => 6,
            Uop::Neg { .. } => 7,
            Uop::Ext { .. } => 8,
            Uop::Bswap { .. } => 9,
            Uop::Ld { .. } => 10,
            Uop::St { .. } => 11,
            Uop::Lea { .. } => 12,
            Uop::SetCc { .. } => 13,
            Uop::GetEflags { .. } => 14,
            Uop::GetCf { .. } => 15,
            Uop::TestCc { .. } => 16,
            Uop::Select { .. } => 17,
            Uop::SetEip { .. } => 18,
            Uop::SetEipImm { .. } => 19,
            Uop::BrCc { .. } => 20,
            Uop::BrCondT { .. } => 21,
            Uop::Halt => 22,
            Uop::Raise { .. } => 23,
            Uop::Int { .. } => 24,
            Uop::Into => 25,
            Uop::SetCarry { .. } => 26,
            Uop::SetDirection { .. } => 27,
            Uop::Helper(h) => 28 + h.kind_index(),
        }
    }
}
