//! The guest-to-micro-op translator (QEMU's `translate.c` analogue).
//!
//! Each call translates a straight-line run of guest instructions into one
//! translation block. The translator reuses the shared instruction *format*
//! decoder from `pokemu-isa` (prefixes/opcode/ModRM parsing is not where
//! QEMU's bugs live) but applies its own acceptance policy: undocumented
//! encodings that real CPUs and the Hi-Fi emulator accept are rejected here
//! unless [`crate::Fidelity::accept_undocumented`] is set — reproducing
//! "QEMU does not consider valid certain instruction encodings" (§6.2).

use pokemu_isa::decode::decode;
use pokemu_isa::inst::{Inst, Rep};
use pokemu_isa::state::{Exception, Gpr, Seg};
use pokemu_isa::translate::desc_kind;
use pokemu_symx::{CVal, Concrete, Dom};

use crate::mmu;
use crate::state::{Fidelity, LofiMachine};
use crate::uop::{AluKind, CcKind, Helper, Uop, T};

/// A translated block.
#[derive(Debug, Clone)]
pub struct Tb {
    /// Guest address of the first instruction.
    pub start: u32,
    /// Guest address one past the last translated byte.
    pub end: u32,
    /// The micro-ops.
    pub uops: Vec<Uop>,
    /// Number of guest instructions.
    pub insns: u32,
}

impl Tb {
    /// Whether control always continues at `self.end` after this block:
    /// the final µop is not a control transfer, halt, or exception, so the
    /// block "runs off its end". These are the blocks the superblock
    /// former may stitch as *non-final* members (DESIGN.md §11) — the
    /// concatenated µop stream then needs no terminator surgery at all.
    ///
    /// `Into` is allowed (it falls through when OF is clear and its
    /// possible fault is handled by the normal `InsnStart` rollback);
    /// helpers are conservatively treated as block-enders because some of
    /// them transfer control.
    pub fn falls_through(&self) -> bool {
        !matches!(
            self.uops.last(),
            None | Some(
                Uop::SetEip { .. }
                    | Uop::SetEipImm { .. }
                    | Uop::BrCc { .. }
                    | Uop::BrCondT { .. }
                    | Uop::Halt
                    | Uop::Raise { .. }
                    | Uop::Int { .. }
                    | Uop::Helper(_)
            )
        )
    }

    /// Whether any µop in this block may write guest memory (stores, or
    /// helpers — which are conservatively assumed to store). A block that
    /// may write memory can rewrite the bytes of a block scheduled *after*
    /// it inside a superblock, so the former never stitches anything
    /// behind such a block.
    pub fn may_write_memory(&self) -> bool {
        self.uops
            .iter()
            .any(|u| matches!(u, Uop::St { .. } | Uop::Helper(_)))
    }
}

struct Emit {
    uops: Vec<Uop>,
    next_t: u16,
}

impl Emit {
    fn t(&mut self) -> T {
        let t = self.next_t;
        self.next_t += 1;
        assert!(t < 250, "temp overflow in one instruction");
        t as T
    }

    fn push(&mut self, u: Uop) {
        self.uops.push(u);
    }

    fn konst(&mut self, val: u32) -> T {
        let dst = self.t();
        self.push(Uop::Const { dst, val });
        dst
    }

    fn read_reg(&mut self, reg: u8, size: u8) -> T {
        let dst = self.t();
        self.push(Uop::ReadReg { dst, reg, size });
        dst
    }

    fn alu(&mut self, op: AluKind, size: u8, a: T, b: T) -> T {
        let dst = self.t();
        self.push(Uop::Alu {
            op,
            size,
            dst,
            a,
            b,
        });
        dst
    }

    /// Emits the effective-address computation of a memory operand.
    fn ea(&mut self, inst: &Inst<CVal>) -> (Seg, T) {
        let mr = inst.modrm.as_ref().expect("modrm");
        let mem = mr.mem.as_ref().expect("memory operand");
        let dst = self.t();
        self.push(Uop::Lea {
            dst,
            base: mem.base.map(|g| g as u8),
            index: mem.index.map(|(g, s)| (g as u8, s)),
            disp: cval(mem.disp),
        });
        (mem.seg, dst)
    }

    /// Reads the r/m operand; returns (value temp, address info for RMW).
    fn read_rm(&mut self, inst: &Inst<CVal>, size: u8) -> (T, Option<(Seg, T)>) {
        let mr = inst.modrm.as_ref().expect("modrm");
        if mr.mem.is_some() {
            let (seg, addr) = self.ea(inst);
            let dst = self.t();
            self.push(Uop::Ld {
                dst,
                seg,
                addr,
                size,
            });
            (dst, Some((seg, addr)))
        } else {
            (self.read_reg(mr.rm, size), None)
        }
    }

    /// Writes the r/m operand, reusing `addr` from a prior `read_rm`.
    fn write_rm(&mut self, inst: &Inst<CVal>, size: u8, src: T, addr: Option<(Seg, T)>) {
        let mr = inst.modrm.as_ref().expect("modrm");
        match addr {
            Some((seg, a)) => self.push(Uop::St {
                seg,
                addr: a,
                src,
                size,
            }),
            None => {
                if mr.mem.is_some() {
                    let (seg, a) = self.ea(inst);
                    self.push(Uop::St {
                        seg,
                        addr: a,
                        src,
                        size,
                    });
                } else {
                    self.push(Uop::WriteReg {
                        reg: mr.rm,
                        size,
                        src,
                    });
                }
            }
        }
    }

    /// push pattern: store at esp-size, then commit esp.
    fn push_t(&mut self, src: T, size: u8) {
        let esp = self.read_reg(Gpr::Esp as u8, 4);
        let k = self.konst(size as u32);
        let nesp = self.alu(AluKind::Sub, 4, esp, k);
        self.push(Uop::St {
            seg: Seg::Ss,
            addr: nesp,
            src,
            size,
        });
        self.push(Uop::WriteReg {
            reg: Gpr::Esp as u8,
            size: 4,
            src: nesp,
        });
    }

    /// pop pattern: load from esp, commit esp, return the value temp.
    fn pop_t(&mut self, size: u8) -> T {
        let esp = self.read_reg(Gpr::Esp as u8, 4);
        let dst = self.t();
        self.push(Uop::Ld {
            dst,
            seg: Seg::Ss,
            addr: esp,
            size,
        });
        let k = self.konst(size as u32);
        let nesp = self.alu(AluKind::Add, 4, esp, k);
        self.push(Uop::WriteReg {
            reg: Gpr::Esp as u8,
            size: 4,
            src: nesp,
        });
        dst
    }

    /// `dst = (a != 0) ? 1 : 0` for 32-bit temps.
    fn nonzero(&mut self, a: T) -> T {
        let neg = self.t();
        self.push(Uop::Neg {
            dst: neg,
            a,
            size: 4,
        });
        let or = self.alu(AluKind::Or, 4, a, neg);
        let k = self.konst(31);
        self.alu(AluKind::Shr, 4, or, k)
    }
}

fn cval(v: CVal) -> u32 {
    Concrete::new().as_const(v).expect("concrete decode value") as u32
}

/// Translates up to `max_insns` instructions starting at `eip`.
///
/// # Errors
///
/// Faults raised while *fetching* code bytes (e.g. #PF on the fetch path).
/// Invalid encodings do not error here: they translate to a `Raise` uop so
/// that earlier instructions in the block still execute.
pub fn translate_block(
    m: &mut LofiMachine,
    tlb: &mut mmu::Tlb,
    fid: &Fidelity,
    eip: u32,
    max_insns: u32,
) -> Result<Tb, Exception> {
    let start = eip;
    let mut e = Emit {
        uops: Vec::new(),
        next_t: 0,
    };
    let mut cur = eip;
    let mut insns = 0u32;
    while insns < max_insns {
        let mut dom = Concrete::new();
        let fetch_base = cur;
        let decoded = decode(&mut dom, |d: &mut Concrete, idx: u8| {
            let b = mmu::fetch_byte(m, tlb, fid, fetch_base.wrapping_add(idx as u32))?;
            Ok(d.constant(8, b as u64))
        });
        let next_t_base = 0;
        e.next_t = next_t_base;
        let inst = match decoded {
            Ok(i) => i,
            Err(fault) => {
                if insns == 0 {
                    return Err(fault);
                }
                // Later instruction fetch faulted: end the block before it;
                // re-execution will fault with the right EIP.
                break;
            }
        };
        let next = cur.wrapping_add(inst.len as u32);
        e.push(Uop::InsnStart { cur, next });
        let ends_block = translate_insn(&mut e, &inst, fid, next);
        insns += 1;
        cur = next;
        if ends_block {
            break;
        }
    }
    Ok(Tb {
        start,
        end: cur,
        uops: e.uops,
        insns,
    })
}

/// Translates one instruction. Returns `true` when the block must end
/// (control flow, halts, helpers that change privileged state).
fn translate_insn(e: &mut Emit, inst: &Inst<CVal>, fid: &Fidelity, next_eip: u32) -> bool {
    let op = inst.class.opcode;
    let opsize = inst.opsize();

    // Encoding-acceptance policy (§6.2).
    if !fid.accept_undocumented {
        let rejected = matches!(op, 0x82 | 0xd6 | 0xf1)
            || (matches!(op, 0xf6 | 0xf7) && inst.class.group_reg == Some(1));
        if rejected {
            e.push(Uop::Raise { vector: 6 });
            return true;
        }
    }

    match op {
        // ---- ALU families ----
        0x00..=0x05
        | 0x08..=0x0d
        | 0x10..=0x15
        | 0x18..=0x1d
        | 0x20..=0x25
        | 0x28..=0x2d
        | 0x30..=0x35
        | 0x38..=0x3d => {
            let alu_op = ((op >> 3) & 7) as u8;
            let enc = (op & 7) as u8;
            let size = if matches!(enc, 0 | 2 | 4) { 1 } else { opsize };
            match enc {
                0 | 1 => {
                    let mr = inst.modrm.as_ref().expect("modrm");
                    let (a, addr) = e.read_rm(inst, size);
                    let b = e.read_reg(mr.reg, size);
                    let (res, wb) = emit_alu(e, alu_op, size, a, b);
                    if wb {
                        e.write_rm(inst, size, res, addr);
                    }
                }
                2 | 3 => {
                    let mr = inst.modrm.as_ref().expect("modrm");
                    let (b, _) = e.read_rm(inst, size);
                    let a = e.read_reg(mr.reg, size);
                    let (res, wb) = emit_alu(e, alu_op, size, a, b);
                    if wb {
                        e.push(Uop::WriteReg {
                            reg: mr.reg,
                            size,
                            src: res,
                        });
                    }
                }
                _ => {
                    let a = e.read_reg(Gpr::Eax as u8, size);
                    let b = e.konst(cval(inst.imm.expect("imm")));
                    let (res, wb) = emit_alu(e, alu_op, size, a, b);
                    if wb {
                        e.push(Uop::WriteReg {
                            reg: Gpr::Eax as u8,
                            size,
                            src: res,
                        });
                    }
                }
            }
            false
        }
        0x80 | 0x81 | 0x82 | 0x83 => {
            let alu_op = inst.class.group_reg.expect("group");
            let size = if matches!(op, 0x80 | 0x82) { 1 } else { opsize };
            let (a, addr) = e.read_rm(inst, size);
            let mut imm = cval(inst.imm.expect("imm"));
            if op == 0x83 {
                imm = ((imm as i8) as i32) as u32 & mask_of(size);
            }
            let b = e.konst(imm);
            let (res, wb) = emit_alu(e, alu_op, size, a, b);
            if wb {
                e.write_rm(inst, size, res, addr);
            }
            false
        }
        0x84 | 0x85 | 0xa8 | 0xa9 => {
            let size = if matches!(op, 0x84 | 0xa8) { 1 } else { opsize };
            let (a, b) = if matches!(op, 0x84 | 0x85) {
                let mr = inst.modrm.as_ref().expect("modrm");
                let (a, _) = e.read_rm(inst, size);
                (a, e.read_reg(mr.reg, size))
            } else {
                let a = e.read_reg(Gpr::Eax as u8, size);
                (a, e.konst(cval(inst.imm.expect("imm"))))
            };
            let res = e.alu(AluKind::And, size, a, b);
            e.push(Uop::SetCc {
                cc: CcKind::Logic,
                size,
                dst: res,
                a,
                b,
            });
            false
        }
        0xf6 | 0xf7 => translate_f6(e, inst),
        0xfe | 0xff => translate_fe_ff(e, inst, next_eip),
        0x40..=0x4f => {
            let size = opsize;
            let reg = (op & 7) as u8;
            let a = e.read_reg(reg, size);
            let one = e.konst(1);
            let cf = e.t();
            e.push(Uop::GetCf { dst: cf });
            let res = if op < 0x48 {
                e.alu(AluKind::Add, size, a, one)
            } else {
                e.alu(AluKind::Sub, size, a, one)
            };
            e.push(Uop::WriteReg {
                reg,
                size,
                src: res,
            });
            let cc = if op < 0x48 { CcKind::Inc } else { CcKind::Dec };
            e.push(Uop::SetCc {
                cc,
                size,
                dst: res,
                a: cf,
                b: cf,
            });
            false
        }
        0xc0 | 0xc1 | 0xd0 | 0xd1 | 0xd2 | 0xd3 => {
            let size = if matches!(op, 0xc0 | 0xd0 | 0xd2) {
                1
            } else {
                opsize
            };
            let g = inst.class.group_reg.expect("group");
            let (val, addr) = e.read_rm(inst, size);
            let count = match op {
                0xc0 | 0xc1 => e.konst(cval(inst.imm.expect("imm8")) & 0xff),
                0xd0 | 0xd1 => e.konst(1),
                _ => e.read_reg(Gpr::Ecx as u8, 1),
            };
            let out = e.t();
            e.push(Uop::Helper(Helper::Shift {
                g,
                size,
                val,
                count,
                out,
            }));
            e.write_rm(inst, size, out, addr);
            false
        }
        0x69 | 0x6b | 0x0faf => {
            let size = opsize;
            let mr = inst.modrm.as_ref().expect("modrm");
            let (a, _) = e.read_rm(inst, size);
            let b = match op {
                0x69 => e.konst(cval(inst.imm.expect("imm"))),
                0x6b => {
                    let v = cval(inst.imm.expect("imm8"));
                    e.konst(((v as i8) as i32) as u32 & mask_of(size))
                }
                _ => e.read_reg(mr.reg, size),
            };
            let out = e.t();
            e.push(Uop::Helper(Helper::Imul2 { size, a, b, out }));
            e.push(Uop::WriteReg {
                reg: mr.reg,
                size,
                src: out,
            });
            false
        }
        0x0fa4 | 0x0fa5 | 0x0fac | 0x0fad => {
            let size = opsize;
            let mr = inst.modrm.as_ref().expect("modrm");
            let left = matches!(op, 0x0fa4 | 0x0fa5);
            let (dst, addr) = e.read_rm(inst, size);
            let src = e.read_reg(mr.reg, size);
            let count = if matches!(op, 0x0fa4 | 0x0fac) {
                e.konst(cval(inst.imm.expect("imm8")) & 0xff)
            } else {
                e.read_reg(Gpr::Ecx as u8, 1)
            };
            let out = e.t();
            e.push(Uop::Helper(Helper::ShiftD {
                left,
                size,
                dst,
                src,
                count,
                out,
            }));
            e.write_rm(inst, size, out, addr);
            false
        }
        0x0fa3 | 0x0fab | 0x0fb3 | 0x0fbb | 0x0fba => {
            let size = opsize;
            let mr = inst.modrm.as_ref().expect("modrm");
            let (action, reg_offset) = match op {
                0x0fa3 => (0, true),
                0x0fab => (1, true),
                0x0fb3 => (2, true),
                0x0fbb => (3, true),
                _ => (inst.class.group_reg.expect("group") - 4, false),
            };
            let bitoff = if reg_offset {
                e.read_reg(mr.reg, size)
            } else {
                e.konst(cval(inst.imm.expect("imm8")) & 0xff)
            };
            if mr.mem.is_some() {
                let (seg, addr) = e.ea(inst);
                e.push(Uop::Helper(Helper::BitOpMem {
                    action,
                    size,
                    seg,
                    addr,
                    bitoff,
                    reg_offset,
                }));
            } else {
                e.push(Uop::Helper(Helper::BitOpReg {
                    action,
                    size,
                    rm: mr.rm,
                    bitoff,
                }));
            }
            false
        }
        0x0fbc | 0x0fbd => {
            let size = opsize;
            let mr = inst.modrm.as_ref().expect("modrm");
            let (src, _) = e.read_rm(inst, size);
            e.push(Uop::Helper(Helper::BsfBsr {
                forward: op == 0x0fbc,
                size,
                src,
                dst_reg: mr.reg,
            }));
            false
        }
        0x0fb0 | 0x0fb1 => {
            let size = if op == 0x0fb0 { 1 } else { opsize };
            let mr = inst.modrm.as_ref().expect("modrm");
            if mr.mem.is_some() {
                let (seg, addr) = e.ea(inst);
                e.push(Uop::Helper(Helper::CmpxchgMem {
                    size,
                    seg,
                    addr,
                    src_reg: mr.reg,
                }));
            } else {
                e.push(Uop::Helper(Helper::CmpxchgReg {
                    size,
                    rm: mr.rm,
                    src_reg: mr.reg,
                }));
            }
            false
        }
        0x0fc0 | 0x0fc1 => {
            let size = if op == 0x0fc0 { 1 } else { opsize };
            let mr = inst.modrm.as_ref().expect("modrm");
            let (dst, addr) = e.read_rm(inst, size);
            let src = e.read_reg(mr.reg, size);
            let sum = e.alu(AluKind::Add, size, dst, src);
            e.write_rm(inst, size, sum, addr);
            e.push(Uop::WriteReg {
                reg: mr.reg,
                size,
                src: dst,
            });
            e.push(Uop::SetCc {
                cc: CcKind::Add,
                size,
                dst: sum,
                a: dst,
                b: src,
            });
            false
        }
        0x0fc8..=0x0fcf => {
            let reg = (op & 7) as u8;
            let a = e.read_reg(reg, 4);
            let dst = e.t();
            e.push(Uop::Bswap { dst, a });
            e.push(Uop::WriteReg {
                reg,
                size: 4,
                src: dst,
            });
            false
        }
        0x27 | 0x2f | 0x37 | 0x3f | 0xd4 | 0xd5 => {
            let imm = if matches!(op, 0xd4 | 0xd5) {
                cval(inst.imm.expect("imm8")) as u8
            } else {
                0
            };
            e.push(Uop::Helper(Helper::Bcd { opcode: op, imm }));
            false
        }
        0x98 | 0x99 => {
            if op == 0x98 {
                let half = e.read_reg(Gpr::Eax as u8, opsize / 2);
                let dst = e.t();
                e.push(Uop::Ext {
                    dst,
                    a: half,
                    from: opsize / 2,
                    to: opsize,
                    signed: true,
                });
                e.push(Uop::WriteReg {
                    reg: Gpr::Eax as u8,
                    size: opsize,
                    src: dst,
                });
            } else {
                let acc = e.read_reg(Gpr::Eax as u8, opsize);
                let k = e.konst((opsize * 8 - 1) as u32);
                let hi = e.alu(AluKind::Sar, opsize, acc, k);
                e.push(Uop::WriteReg {
                    reg: Gpr::Edx as u8,
                    size: opsize,
                    src: hi,
                });
            }
            false
        }
        0x0fb6 | 0x0fb7 | 0x0fbe | 0x0fbf => {
            let mr = inst.modrm.as_ref().expect("modrm");
            let src_size = if matches!(op, 0x0fb6 | 0x0fbe) { 1 } else { 2 };
            let (v, _) = e.read_rm(inst, src_size);
            let dst = e.t();
            let signed = matches!(op, 0x0fbe | 0x0fbf);
            let to = opsize.max(src_size);
            e.push(Uop::Ext {
                dst,
                a: v,
                from: src_size,
                to,
                signed,
            });
            e.push(Uop::WriteReg {
                reg: mr.reg,
                size: opsize,
                src: dst,
            });
            false
        }
        0x0f90..=0x0f9f => {
            let cc = (op & 0xf) as u8;
            let t = e.t();
            e.push(Uop::TestCc { dst: t, cc });
            e.write_rm(inst, 1, t, None);
            false
        }
        0x0f40..=0x0f4f => {
            let cc = (op & 0xf) as u8;
            let mr = inst.modrm.as_ref().expect("modrm");
            let (src, _) = e.read_rm(inst, opsize);
            let cond = e.t();
            e.push(Uop::TestCc { dst: cond, cc });
            let old = e.read_reg(mr.reg, opsize);
            let out = e.t();
            e.push(Uop::Select {
                dst: out,
                cond,
                a: src,
                b: old,
            });
            e.push(Uop::WriteReg {
                reg: mr.reg,
                size: opsize,
                src: out,
            });
            false
        }

        // ---- data movement ----
        0x88 | 0x89 => {
            let size = if op == 0x88 { 1 } else { opsize };
            let mr = inst.modrm.as_ref().expect("modrm");
            let v = e.read_reg(mr.reg, size);
            e.write_rm(inst, size, v, None);
            false
        }
        0x8a | 0x8b => {
            let size = if op == 0x8a { 1 } else { opsize };
            let mr = inst.modrm.as_ref().expect("modrm");
            let (v, _) = e.read_rm(inst, size);
            e.push(Uop::WriteReg {
                reg: mr.reg,
                size,
                src: v,
            });
            false
        }
        0xa0 | 0xa1 => {
            let size = if op == 0xa0 { 1 } else { opsize };
            let seg = inst.seg_override.unwrap_or(Seg::Ds);
            let addr = e.konst(cval(inst.imm.expect("moffs")));
            let dst = e.t();
            e.push(Uop::Ld {
                dst,
                seg,
                addr,
                size,
            });
            e.push(Uop::WriteReg {
                reg: Gpr::Eax as u8,
                size,
                src: dst,
            });
            false
        }
        0xa2 | 0xa3 => {
            let size = if op == 0xa2 { 1 } else { opsize };
            let seg = inst.seg_override.unwrap_or(Seg::Ds);
            let addr = e.konst(cval(inst.imm.expect("moffs")));
            let v = e.read_reg(Gpr::Eax as u8, size);
            e.push(Uop::St {
                seg,
                addr,
                src: v,
                size,
            });
            false
        }
        0xb0..=0xb7 => {
            let v = e.konst(cval(inst.imm.expect("imm8")));
            e.push(Uop::WriteReg {
                reg: (op & 7) as u8,
                size: 1,
                src: v,
            });
            false
        }
        0xb8..=0xbf => {
            let v = e.konst(cval(inst.imm.expect("imm")));
            e.push(Uop::WriteReg {
                reg: (op & 7) as u8,
                size: opsize,
                src: v,
            });
            false
        }
        0xc6 | 0xc7 => {
            let size = if op == 0xc6 { 1 } else { opsize };
            let v = e.konst(cval(inst.imm.expect("imm")));
            e.write_rm(inst, size, v, None);
            false
        }
        0x8c => {
            let mr = inst.modrm.as_ref().expect("modrm");
            match Seg::from_bits(mr.reg) {
                None => {
                    e.push(Uop::Raise { vector: 6 });
                    true
                }
                Some(seg) => {
                    let sel = e.t();
                    e.push(Uop::ReadSel { dst: sel, seg });
                    if mr.mem.is_some() {
                        e.write_rm(inst, 2, sel, None);
                    } else {
                        let out = e.t();
                        e.push(Uop::Ext {
                            dst: out,
                            a: sel,
                            from: 2,
                            to: opsize,
                            signed: false,
                        });
                        e.push(Uop::WriteReg {
                            reg: mr.rm,
                            size: opsize,
                            src: out,
                        });
                    }
                    false
                }
            }
        }
        0x8e => {
            let mr = inst.modrm.as_ref().expect("modrm");
            match Seg::from_bits(mr.reg) {
                None | Some(Seg::Cs) => {
                    e.push(Uop::Raise { vector: 6 });
                    true
                }
                Some(seg) => {
                    let (sel, _) = e.read_rm(inst, 2);
                    let kind = if seg == Seg::Ss {
                        desc_kind::STACK
                    } else {
                        desc_kind::DATA
                    } as u8;
                    e.push(Uop::Helper(Helper::LoadSeg { seg, sel, kind }));
                    false
                }
            }
        }
        0x8d => {
            let mr = inst.modrm.as_ref().expect("modrm");
            let (_, addr) = e.ea(inst);
            if opsize == 2 {
                let out = e.t();
                e.push(Uop::Ext {
                    dst: out,
                    a: addr,
                    from: 4,
                    to: 2,
                    signed: false,
                });
                e.push(Uop::WriteReg {
                    reg: mr.reg,
                    size: 2,
                    src: out,
                });
            } else {
                e.push(Uop::WriteReg {
                    reg: mr.reg,
                    size: 4,
                    src: addr,
                });
            }
            false
        }
        0x86 | 0x87 => {
            let size = if op == 0x86 { 1 } else { opsize };
            let mr = inst.modrm.as_ref().expect("modrm");
            let (mem_val, addr) = e.read_rm(inst, size);
            let reg_val = e.read_reg(mr.reg, size);
            e.write_rm(inst, size, reg_val, addr);
            e.push(Uop::WriteReg {
                reg: mr.reg,
                size,
                src: mem_val,
            });
            false
        }
        0x90..=0x97 => {
            if op != 0x90 {
                let reg = (op & 7) as u8;
                let a = e.read_reg(Gpr::Eax as u8, opsize);
                let b = e.read_reg(reg, opsize);
                e.push(Uop::WriteReg {
                    reg: Gpr::Eax as u8,
                    size: opsize,
                    src: b,
                });
                e.push(Uop::WriteReg {
                    reg,
                    size: opsize,
                    src: a,
                });
            }
            false
        }
        0x50..=0x57 => {
            let v = e.read_reg((op & 7) as u8, opsize);
            e.push_t(v, opsize);
            false
        }
        0x58..=0x5f => {
            let v = e.pop_t(opsize);
            e.push(Uop::WriteReg {
                reg: (op & 7) as u8,
                size: opsize,
                src: v,
            });
            false
        }
        0x68 => {
            let v = e.konst(cval(inst.imm.expect("imm")));
            e.push_t(v, opsize);
            false
        }
        0x6a => {
            let raw = cval(inst.imm.expect("imm8"));
            let v = e.konst(((raw as i8) as i32) as u32 & mask_of(opsize));
            e.push_t(v, opsize);
            false
        }
        0x8f => {
            let v = e.pop_t(opsize);
            // QEMU computes the EA after the pop (ESP already updated);
            // fault rollback is not modeled — matching its eager commit.
            e.write_rm(inst, opsize, v, None);
            false
        }
        0x06 | 0x0e | 0x16 | 0x1e | 0x0fa0 | 0x0fa8 => {
            let seg = match op {
                0x06 => Seg::Es,
                0x0e => Seg::Cs,
                0x16 => Seg::Ss,
                0x1e => Seg::Ds,
                0x0fa0 => Seg::Fs,
                _ => Seg::Gs,
            };
            let sel = e.t();
            e.push(Uop::ReadSel { dst: sel, seg });
            let v = e.t();
            e.push(Uop::Ext {
                dst: v,
                a: sel,
                from: 2,
                to: opsize,
                signed: false,
            });
            e.push_t(v, opsize);
            false
        }
        0x07 | 0x17 | 0x1f | 0x0fa1 | 0x0fa9 => {
            let seg = match op {
                0x07 => Seg::Es,
                0x17 => Seg::Ss,
                0x1f => Seg::Ds,
                0x0fa1 => Seg::Fs,
                _ => Seg::Gs,
            };
            e.push(Uop::Helper(Helper::PopSeg { seg, size: opsize }));
            false
        }
        0x60 => {
            let orig = e.read_reg(Gpr::Esp as u8, opsize);
            for r in [Gpr::Eax, Gpr::Ecx, Gpr::Edx, Gpr::Ebx] {
                let v = e.read_reg(r as u8, opsize);
                e.push_t(v, opsize);
            }
            e.push_t(orig, opsize);
            for r in [Gpr::Ebp, Gpr::Esi, Gpr::Edi] {
                let v = e.read_reg(r as u8, opsize);
                e.push_t(v, opsize);
            }
            false
        }
        0x61 => {
            for r in [Gpr::Edi, Gpr::Esi, Gpr::Ebp] {
                let v = e.pop_t(opsize);
                e.push(Uop::WriteReg {
                    reg: r as u8,
                    size: opsize,
                    src: v,
                });
            }
            let esp = e.read_reg(Gpr::Esp as u8, 4);
            let k = e.konst(opsize as u32);
            let nesp = e.alu(AluKind::Add, 4, esp, k);
            e.push(Uop::WriteReg {
                reg: Gpr::Esp as u8,
                size: 4,
                src: nesp,
            });
            for r in [Gpr::Ebx, Gpr::Edx, Gpr::Ecx, Gpr::Eax] {
                let v = e.pop_t(opsize);
                e.push(Uop::WriteReg {
                    reg: r as u8,
                    size: opsize,
                    src: v,
                });
            }
            false
        }
        0x9c => {
            e.push(Uop::Helper(Helper::PushF { size: opsize }));
            false
        }
        0x9d => {
            e.push(Uop::Helper(Helper::PopF { size: opsize }));
            true // IF may change: end the block like QEMU does
        }
        0x9e => {
            e.push(Uop::Helper(Helper::Sahf));
            false
        }
        0x9f => {
            let f = e.t();
            e.push(Uop::GetEflags { dst: f });
            let m8 = e.konst(0xff);
            let low = e.alu(AluKind::And, 4, f, m8);
            let two = e.konst(2);
            let v = e.alu(AluKind::Or, 4, low, two);
            let v8 = e.t();
            e.push(Uop::Ext {
                dst: v8,
                a: v,
                from: 4,
                to: 1,
                signed: false,
            });
            e.push(Uop::WriteReg {
                reg: 4,
                size: 1,
                src: v8,
            }); // AH
            false
        }
        0xf5 => {
            e.push(Uop::SetCarry { mode: 2 });
            false
        }
        0xf8 => {
            e.push(Uop::SetCarry { mode: 0 });
            false
        }
        0xf9 => {
            e.push(Uop::SetCarry { mode: 1 });
            false
        }
        0xfa | 0xfb => {
            e.push(Uop::Helper(Helper::CliSti { enable: op == 0xfb }));
            true
        }
        0xfc => {
            e.push(Uop::SetDirection { set: false });
            false
        }
        0xfd => {
            e.push(Uop::SetDirection { set: true });
            false
        }
        0xd6 => {
            // salc (only reachable with accept_undocumented): AL = CF ? 0xff : 0.
            let cf = e.t();
            e.push(Uop::GetCf { dst: cf });
            let ff = e.konst(0xff);
            let z = e.konst(0);
            let al = e.t();
            e.push(Uop::Select {
                dst: al,
                cond: cf,
                a: ff,
                b: z,
            });
            e.push(Uop::WriteReg {
                reg: 0,
                size: 1,
                src: al,
            });
            false
        }
        0xd7 => {
            let seg = inst.seg_override.unwrap_or(Seg::Ds);
            let ebx = e.read_reg(Gpr::Ebx as u8, 4);
            let al = e.read_reg(Gpr::Eax as u8, 1);
            let al32 = e.t();
            e.push(Uop::Ext {
                dst: al32,
                a: al,
                from: 1,
                to: 4,
                signed: false,
            });
            let addr = e.alu(AluKind::Add, 4, ebx, al32);
            let v = e.t();
            e.push(Uop::Ld {
                dst: v,
                seg,
                addr,
                size: 1,
            });
            e.push(Uop::WriteReg {
                reg: Gpr::Eax as u8,
                size: 1,
                src: v,
            });
            false
        }
        0xa4..=0xa7 | 0xaa..=0xaf => {
            let size = match op {
                0xa4 | 0xa6 | 0xaa | 0xac | 0xae => 1,
                _ => opsize,
            };
            let rep = match inst.rep {
                None => 0,
                Some(Rep::RepE) => 1,
                Some(Rep::RepNe) => 2,
            };
            let seg = inst.seg_override.unwrap_or(Seg::Ds);
            e.push(Uop::Helper(Helper::StringOp {
                opcode: op,
                size,
                rep,
                seg,
            }));
            false
        }
        0xc4 | 0xc5 | 0x0fb2 | 0x0fb4 | 0x0fb5 => {
            let (seg, kind) = match op {
                0xc4 => (Seg::Es, desc_kind::DATA),
                0xc5 => (Seg::Ds, desc_kind::DATA),
                0x0fb2 => (Seg::Ss, desc_kind::STACK),
                0x0fb4 => (Seg::Fs, desc_kind::DATA),
                _ => (Seg::Gs, desc_kind::DATA),
            };
            let mr = inst.modrm.as_ref().expect("modrm");
            let (mseg, addr) = e.ea(inst);
            // Offset first, selector second (hardware/QEMU order; the Hi-Fi
            // emulator is the deviant here, §6.2).
            let off = e.t();
            e.push(Uop::Ld {
                dst: off,
                seg: mseg,
                addr,
                size: opsize,
            });
            let k = e.konst(opsize as u32);
            let sel_addr = e.alu(AluKind::Add, 4, addr, k);
            let sel = e.t();
            e.push(Uop::Ld {
                dst: sel,
                seg: mseg,
                addr: sel_addr,
                size: 2,
            });
            e.push(Uop::Helper(Helper::LoadSeg {
                seg,
                sel,
                kind: kind as u8,
            }));
            e.push(Uop::WriteReg {
                reg: mr.reg,
                size: opsize,
                src: off,
            });
            false
        }

        // ---- control flow ----
        0x70..=0x7f | 0x0f80..=0x0f8f => {
            let cc = (op & 0xf) as u8;
            let rel = cval(inst.imm.expect("rel"));
            let target = next_eip.wrapping_add(sext_to_32(rel, inst));
            e.push(Uop::BrCc { cc, target });
            true
        }
        0xe0..=0xe3 => {
            let rel = cval(inst.imm.expect("rel8"));
            let target = next_eip.wrapping_add(((rel as i8) as i32) as u32);
            let cond = if op == 0xe3 {
                let ecx = e.read_reg(Gpr::Ecx as u8, 4);
                let nz = e.nonzero(ecx);
                let one = e.konst(1);
                e.alu(AluKind::Xor, 4, nz, one) // ecx == 0
            } else {
                let ecx = e.read_reg(Gpr::Ecx as u8, 4);
                let one = e.konst(1);
                let dec = e.alu(AluKind::Sub, 4, ecx, one);
                e.push(Uop::WriteReg {
                    reg: Gpr::Ecx as u8,
                    size: 4,
                    src: dec,
                });
                let nz = e.nonzero(dec);
                match op {
                    0xe0 => {
                        // loopne: nz && !ZF
                        let nzf = e.t();
                        e.push(Uop::TestCc { dst: nzf, cc: 0x5 });
                        e.alu(AluKind::And, 4, nz, nzf)
                    }
                    0xe1 => {
                        let zf = e.t();
                        e.push(Uop::TestCc { dst: zf, cc: 0x4 });
                        e.alu(AluKind::And, 4, nz, zf)
                    }
                    _ => nz,
                }
            };
            e.push(Uop::BrCondT { cond, target });
            true
        }
        0xe8 | 0xe9 | 0xeb => {
            let rel = cval(inst.imm.expect("rel"));
            let target = next_eip.wrapping_add(sext_to_32(rel, inst));
            if op == 0xe8 {
                let ret = e.konst(next_eip);
                e.push_t(ret, opsize);
            }
            e.push(Uop::SetEipImm { target });
            true
        }
        0xc2 | 0xc3 => {
            let t = e.pop_t(opsize);
            if op == 0xc2 {
                let extra = cval(inst.imm.expect("imm16")) & 0xffff;
                let esp = e.read_reg(Gpr::Esp as u8, 4);
                let k = e.konst(extra);
                let nesp = e.alu(AluKind::Add, 4, esp, k);
                e.push(Uop::WriteReg {
                    reg: Gpr::Esp as u8,
                    size: 4,
                    src: nesp,
                });
            }
            let t32 = widen(e, t, opsize);
            e.push(Uop::SetEip { target: t32 });
            true
        }
        0xca | 0xcb => {
            let extra = if op == 0xca {
                cval(inst.imm.expect("imm16")) as u16
            } else {
                0
            };
            e.push(Uop::Helper(Helper::RetFar {
                size: opsize,
                extra,
            }));
            true
        }
        0xcf => {
            e.push(Uop::Helper(Helper::Iret { size: opsize }));
            true
        }
        0x9a | 0xea => {
            let off = e.konst(cval(inst.imm.expect("far offset")));
            let sel = e.konst(cval(inst.imm2.expect("far selector")));
            e.push(Uop::Helper(Helper::FarXfer {
                call: op == 0x9a,
                sel,
                off,
                size: opsize,
            }));
            true
        }
        0xcc => {
            e.push(Uop::Raise { vector: 3 });
            true
        }
        0xcd => {
            let v = cval(inst.imm.expect("vector")) as u8;
            e.push(Uop::Int { vector: v });
            true
        }
        0xce => {
            e.push(Uop::Into);
            false
        }
        0xf1 => {
            e.push(Uop::Raise { vector: 1 });
            true
        }
        0xc8 => {
            let alloc = cval(inst.imm.expect("imm16")) as u16;
            let level = (cval(inst.imm2.expect("imm8")) & 0x1f) as u8;
            e.push(Uop::Helper(Helper::Enter {
                size: opsize,
                alloc,
                level,
            }));
            false
        }
        0xc9 => {
            // QEMU's leave: mov esp, ebp; pop ebp — ESP is clobbered before
            // the load is checked (§6.2). Atomicity fix reads first.
            let ebp = e.read_reg(Gpr::Ebp as u8, 4);
            if fid.atomic_leave {
                let v = e.t();
                e.push(Uop::Ld {
                    dst: v,
                    seg: Seg::Ss,
                    addr: ebp,
                    size: opsize,
                });
                let k = e.konst(opsize as u32);
                let nesp = e.alu(AluKind::Add, 4, ebp, k);
                e.push(Uop::WriteReg {
                    reg: Gpr::Esp as u8,
                    size: 4,
                    src: nesp,
                });
                e.push(Uop::WriteReg {
                    reg: Gpr::Ebp as u8,
                    size: opsize,
                    src: v,
                });
            } else {
                e.push(Uop::WriteReg {
                    reg: Gpr::Esp as u8,
                    size: 4,
                    src: ebp,
                });
                let v = e.pop_t(opsize);
                e.push(Uop::WriteReg {
                    reg: Gpr::Ebp as u8,
                    size: opsize,
                    src: v,
                });
            }
            false
        }
        0x62 => {
            let mr = inst.modrm.as_ref().expect("modrm");
            let (seg, addr) = e.ea(inst);
            e.push(Uop::Helper(Helper::Bound {
                size: opsize,
                reg: mr.reg,
                addr,
                seg,
            }));
            false
        }
        0x63 => {
            let mr = inst.modrm.as_ref().expect("modrm");
            let (dst, addr) = e.read_rm(inst, 2);
            let src = e.read_reg(mr.reg, 2);
            let out = e.t();
            e.push(Uop::Helper(Helper::Arpl { dst, src, out }));
            e.write_rm(inst, 2, out, addr);
            false
        }

        // ---- system ----
        0xf4 => {
            e.push(Uop::Helper(Helper::Hlt));
            true
        }
        0x0f20 | 0x0f22 => {
            let mr = inst.modrm.as_ref().expect("modrm");
            e.push(Uop::Helper(Helper::MovCr {
                write: op == 0x0f22,
                crn: mr.reg,
                reg: mr.rm,
            }));
            true // privileged state may change: end block
        }
        0x0f00 => {
            let g = inst.class.group_reg.expect("group");
            match g {
                0 | 1 => {
                    let out = e.t();
                    e.push(Uop::Helper(Helper::SldtStr { out }));
                    e.write_rm(inst, 2, out, None);
                }
                2 | 3 => {
                    let (sel, _) = e.read_rm(inst, 2);
                    e.push(Uop::Helper(Helper::LldtLtr { sel }));
                }
                4 | 5 => {
                    let (sel, _) = e.read_rm(inst, 2);
                    e.push(Uop::Helper(Helper::Verrw { write: g == 5, sel }));
                }
                _ => {
                    e.push(Uop::Raise { vector: 6 });
                    return true;
                }
            }
            false
        }
        0x0f01 => {
            let g = inst.class.group_reg.expect("group");
            let mr = inst.modrm.as_ref().expect("modrm");
            match g {
                0 | 1 | 2 | 3 => {
                    if mr.mem.is_none() {
                        e.push(Uop::Raise { vector: 6 });
                        return true;
                    }
                    let (seg, addr) = e.ea(inst);
                    e.push(Uop::Helper(Helper::DescTable {
                        which: g,
                        addr,
                        seg,
                    }));
                    return g >= 2; // lgdt/lidt end the block
                }
                4 => {
                    let out = e.t();
                    e.push(Uop::Helper(Helper::Smsw { out }));
                    if mr.mem.is_none() {
                        let w = widen(e, out, 2);
                        let t = e.t();
                        e.push(Uop::Ext {
                            dst: t,
                            a: w,
                            from: 4,
                            to: opsize,
                            signed: false,
                        });
                        e.push(Uop::WriteReg {
                            reg: mr.rm,
                            size: opsize,
                            src: t,
                        });
                    } else {
                        e.write_rm(inst, 2, out, None);
                    }
                }
                6 => {
                    let (v, _) = e.read_rm(inst, 2);
                    e.push(Uop::Helper(Helper::Lmsw { val: v }));
                    return true;
                }
                7 => {
                    if mr.mem.is_none() {
                        e.push(Uop::Raise { vector: 6 });
                        return true;
                    }
                    e.push(Uop::Helper(Helper::Invlpg));
                }
                _ => {
                    e.push(Uop::Raise { vector: 6 });
                    return true;
                }
            }
            false
        }
        0x0f02 | 0x0f03 => {
            let mr = inst.modrm.as_ref().expect("modrm");
            let (sel, _) = e.read_rm(inst, 2);
            e.push(Uop::Helper(Helper::LarLsl {
                is_lsl: op == 0x0f03,
                sel,
                dst_reg: mr.reg,
                size: opsize,
            }));
            false
        }
        0x0f06 => {
            e.push(Uop::Helper(Helper::Clts));
            false
        }
        0x0f08 | 0x0f09 => {
            e.push(Uop::Helper(Helper::CacheOp));
            false
        }
        0x0f30 => {
            e.push(Uop::Helper(Helper::Msr { write: true }));
            true
        }
        0x0f31 => {
            e.push(Uop::Helper(Helper::Rdtsc));
            false
        }
        0x0f32 => {
            e.push(Uop::Helper(Helper::Msr { write: false }));
            false
        }
        0x0fa2 => {
            e.push(Uop::Helper(Helper::Cpuid));
            false
        }

        _ => {
            e.push(Uop::Raise { vector: 6 });
            true
        }
    }
}

/// Emits the core of one ALU-family op. Returns `(result, writeback)`.
fn emit_alu(e: &mut Emit, alu_op: u8, size: u8, a: T, b: T) -> (T, bool) {
    match alu_op {
        0 => {
            let r = e.alu(AluKind::Add, size, a, b);
            e.push(Uop::SetCc {
                cc: CcKind::Add,
                size,
                dst: r,
                a,
                b,
            });
            (r, true)
        }
        1 => {
            let r = e.alu(AluKind::Or, size, a, b);
            e.push(Uop::SetCc {
                cc: CcKind::Logic,
                size,
                dst: r,
                a,
                b,
            });
            (r, true)
        }
        2 => {
            let cf = e.t();
            e.push(Uop::GetCf { dst: cf });
            let cfw = if size == 4 { cf } else { narrow(e, cf, size) };
            let t1 = e.alu(AluKind::Add, size, a, b);
            let r = e.alu(AluKind::Add, size, t1, cfw);
            e.push(Uop::SetCc {
                cc: CcKind::Adc,
                size,
                dst: r,
                a,
                b,
            });
            (r, true)
        }
        3 => {
            let cf = e.t();
            e.push(Uop::GetCf { dst: cf });
            let cfw = if size == 4 { cf } else { narrow(e, cf, size) };
            let t1 = e.alu(AluKind::Sub, size, a, b);
            let r = e.alu(AluKind::Sub, size, t1, cfw);
            e.push(Uop::SetCc {
                cc: CcKind::Sbb,
                size,
                dst: r,
                a,
                b,
            });
            (r, true)
        }
        4 => {
            let r = e.alu(AluKind::And, size, a, b);
            e.push(Uop::SetCc {
                cc: CcKind::Logic,
                size,
                dst: r,
                a,
                b,
            });
            (r, true)
        }
        5 => {
            let r = e.alu(AluKind::Sub, size, a, b);
            e.push(Uop::SetCc {
                cc: CcKind::Sub,
                size,
                dst: r,
                a,
                b,
            });
            (r, true)
        }
        6 => {
            let r = e.alu(AluKind::Xor, size, a, b);
            e.push(Uop::SetCc {
                cc: CcKind::Logic,
                size,
                dst: r,
                a,
                b,
            });
            (r, true)
        }
        _ => {
            let r = e.alu(AluKind::Sub, size, a, b);
            e.push(Uop::SetCc {
                cc: CcKind::Sub,
                size,
                dst: r,
                a,
                b,
            });
            (r, false)
        }
    }
}

fn translate_f6(e: &mut Emit, inst: &Inst<CVal>) -> bool {
    let op = inst.class.opcode;
    let size = if op == 0xf6 { 1 } else { inst.opsize() };
    let g = inst.class.group_reg.expect("group");
    match g {
        0 | 1 => {
            let (a, _) = e.read_rm(inst, size);
            let b = e.konst(cval(inst.imm.expect("imm")));
            let r = e.alu(AluKind::And, size, a, b);
            e.push(Uop::SetCc {
                cc: CcKind::Logic,
                size,
                dst: r,
                a,
                b,
            });
            false
        }
        2 => {
            let (a, addr) = e.read_rm(inst, size);
            let r = e.t();
            e.push(Uop::Not { dst: r, a, size });
            e.write_rm(inst, size, r, addr);
            false
        }
        3 => {
            let (a, addr) = e.read_rm(inst, size);
            let r = e.t();
            e.push(Uop::Neg { dst: r, a, size });
            e.write_rm(inst, size, r, addr);
            let zero = e.konst(0);
            e.push(Uop::SetCc {
                cc: CcKind::Sub,
                size,
                dst: r,
                a: zero,
                b: a,
            });
            false
        }
        _ => {
            let (val, _) = e.read_rm(inst, size);
            e.push(Uop::Helper(Helper::MulDiv { g, size, val }));
            false
        }
    }
}

fn translate_fe_ff(e: &mut Emit, inst: &Inst<CVal>, next_eip: u32) -> bool {
    let op = inst.class.opcode;
    let size = if op == 0xfe { 1 } else { inst.opsize() };
    let g = inst.class.group_reg.expect("group");
    match g {
        0 | 1 => {
            let (a, addr) = e.read_rm(inst, size);
            let one = e.konst(1);
            let cf = e.t();
            e.push(Uop::GetCf { dst: cf });
            let r = if g == 0 {
                e.alu(AluKind::Add, size, a, one)
            } else {
                e.alu(AluKind::Sub, size, a, one)
            };
            e.write_rm(inst, size, r, addr);
            let cc = if g == 0 { CcKind::Inc } else { CcKind::Dec };
            e.push(Uop::SetCc {
                cc,
                size,
                dst: r,
                a: cf,
                b: cf,
            });
            false
        }
        2 => {
            let (t, _) = e.read_rm(inst, size);
            let ret = e.konst(next_eip);
            e.push_t(ret, size);
            let t32 = widen(e, t, size);
            e.push(Uop::SetEip { target: t32 });
            true
        }
        4 => {
            let (t, _) = e.read_rm(inst, size);
            let t32 = widen(e, t, size);
            e.push(Uop::SetEip { target: t32 });
            true
        }
        3 | 5 => {
            let mr = inst.modrm.as_ref().expect("modrm");
            if mr.mem.is_none() {
                e.push(Uop::Raise { vector: 6 });
                return true;
            }
            let (seg, addr) = e.ea(inst);
            let off = e.t();
            e.push(Uop::Ld {
                dst: off,
                seg,
                addr,
                size,
            });
            let k = e.konst(size as u32);
            let sel_addr = e.alu(AluKind::Add, 4, addr, k);
            let sel = e.t();
            e.push(Uop::Ld {
                dst: sel,
                seg,
                addr: sel_addr,
                size: 2,
            });
            e.push(Uop::Helper(Helper::FarXfer {
                call: g == 3,
                sel,
                off,
                size,
            }));
            true
        }
        6 => {
            let (v, _) = e.read_rm(inst, size);
            e.push_t(v, size);
            false
        }
        _ => {
            e.push(Uop::Raise { vector: 6 });
            true
        }
    }
}

fn widen(e: &mut Emit, t: T, from: u8) -> T {
    if from == 4 {
        return t;
    }
    let dst = e.t();
    e.push(Uop::Ext {
        dst,
        a: t,
        from,
        to: 4,
        signed: false,
    });
    dst
}

fn narrow(e: &mut Emit, t: T, to: u8) -> T {
    let dst = e.t();
    e.push(Uop::Ext {
        dst,
        a: t,
        from: 4,
        to,
        signed: false,
    });
    dst
}

fn mask_of(size: u8) -> u32 {
    if size == 4 {
        u32::MAX
    } else {
        (1u32 << (size * 8)) - 1
    }
}

fn sext_to_32(raw: u32, inst: &Inst<CVal>) -> u32 {
    // Relative displacements: sign-extend from their encoded width.
    let w = match inst.class.opcode {
        0x70..=0x7f | 0xe0..=0xe3 | 0xeb => 8,
        _ => {
            if inst.opsize16 {
                16
            } else {
                32
            }
        }
    };
    match w {
        8 => ((raw as i8) as i32) as u32,
        16 => ((raw as u16 as i16) as i32) as u32,
        _ => raw,
    }
}
