//! IR-skip fast path: a specialized pre-decoded form for straight-line
//! ALU/mov-class blocks (after "Boosting Cross-Architectural Emulation
//! Performance by Foregoing the Intermediate Representation Model",
//! PAPERS.md).
//!
//! A translation block is *IR-skip eligible* when every micro-op in it is
//! provably non-faulting (register/temp-only: no loads, stores, helpers,
//! software interrupts, or `into`) and control flow appears only as the
//! final micro-op (direct jump, conditional branch, or fall-off-the-end).
//! For such a block the fault machinery, per-instruction EIP bookkeeping,
//! and per-µop coverage recording are all dead weight: the whole block
//! either executes or it doesn't, so EIP is written once at the end and
//! the block's deduplicated `coverage.uop` indices are replayed as a
//! fixed prefix. Semantics are shared with the µop interpreter via
//! [`crate::exec::alu_eval`] / [`crate::exec::set_cc`] and the register
//! accessors, so the two strategies cannot drift.
//!
//! Observable state (registers, flags, coverage bits, successor EIP) is
//! byte-identical to running the same block through `exec_tb`; only the
//! execution strategy changes (DESIGN.md §11).

use pokemu_isa::state::Seg;

use crate::exec::{alu_eval, cond_eval_lazy, mask, read_reg, set_cc, write_reg, Core, TbExit};
use crate::translate::Tb;
use crate::uop::{AluKind, CcKind, Uop, UOP_COVERAGE_BITS};

/// One pre-decoded fast op. Mirrors the non-faulting register-class
/// subset of [`Uop`] with instruction-boundary markers folded away.
#[derive(Debug, Clone, Copy)]
enum FastOp {
    Const {
        dst: u8,
        val: u32,
    },
    ReadReg {
        dst: u8,
        reg: u8,
        size: u8,
    },
    WriteReg {
        reg: u8,
        size: u8,
        src: u8,
    },
    ReadSel {
        dst: u8,
        seg: Seg,
    },
    Alu {
        op: AluKind,
        size: u8,
        dst: u8,
        a: u8,
        b: u8,
    },
    Not {
        dst: u8,
        a: u8,
        size: u8,
    },
    Neg {
        dst: u8,
        a: u8,
        size: u8,
    },
    Ext {
        dst: u8,
        a: u8,
        from: u8,
        to: u8,
        signed: bool,
    },
    Bswap {
        dst: u8,
        a: u8,
    },
    Lea {
        dst: u8,
        base: Option<u8>,
        index: Option<(u8, u8)>,
        disp: u32,
    },
    SetCc {
        cc: CcKind,
        size: u8,
        dst: u8,
        a: u8,
        b: u8,
    },
    GetEflags {
        dst: u8,
    },
    GetCf {
        dst: u8,
    },
    TestCc {
        dst: u8,
        cc: u8,
    },
    Select {
        dst: u8,
        cond: u8,
        a: u8,
        b: u8,
    },
    SetCarry {
        mode: u8,
    },
    SetDirection {
        set: bool,
    },
}

/// How a fast block hands control back.
#[derive(Debug, Clone, Copy)]
enum FastExit {
    /// Ran off the end of the block.
    Fall,
    /// Unconditional direct jump.
    Jump(u32),
    /// Conditional branch on materialized EFLAGS.
    BrCc { cc: u8, target: u32 },
    /// Conditional branch on a temp (loop/jecxz family).
    BrCondT { cond: u8, target: u32 },
}

/// A pre-decoded, provably non-faulting block.
#[derive(Debug, Clone)]
pub struct FastBlock {
    ops: Box<[FastOp]>,
    /// The `coverage.uop` bits covered by the original µop stream
    /// (including folded `InsnStart`s and the terminator), pre-merged into
    /// per-word `(word, mask)` pairs and replayed on every execution so
    /// coverage bitmaps match `exec_tb` exactly — at one word-level OR
    /// (and, steady-state, one load) per pair instead of one RMW per µop.
    cov: Box<[(u16, u64)]>,
    /// EIP after the block when it falls through (= `Tb::end`).
    end: u32,
    exit: FastExit,
}

/// Compiles a translation block into its IR-skip form, or `None` when the
/// block is not eligible (any potentially faulting µop, or control flow
/// before the final µop).
pub fn compile(tb: &Tb) -> Option<FastBlock> {
    if tb.uops.is_empty() {
        return None;
    }
    let mut ops = Vec::with_capacity(tb.uops.len());
    let mut bits = 0u128;
    let mut exit = FastExit::Fall;
    for (i, uop) in tb.uops.iter().enumerate() {
        let last = i + 1 == tb.uops.len();
        debug_assert!(uop.cov_index() < UOP_COVERAGE_BITS);
        bits |= 1u128 << uop.cov_index();
        match *uop {
            Uop::InsnStart { .. } => {}
            Uop::Const { dst, val } => ops.push(FastOp::Const { dst, val }),
            Uop::ReadReg { dst, reg, size } => ops.push(FastOp::ReadReg { dst, reg, size }),
            Uop::WriteReg { reg, size, src } => ops.push(FastOp::WriteReg { reg, size, src }),
            Uop::ReadSel { dst, seg } => ops.push(FastOp::ReadSel { dst, seg }),
            Uop::Alu {
                op,
                size,
                dst,
                a,
                b,
            } => ops.push(FastOp::Alu {
                op,
                size,
                dst,
                a,
                b,
            }),
            Uop::Not { dst, a, size } => ops.push(FastOp::Not { dst, a, size }),
            Uop::Neg { dst, a, size } => ops.push(FastOp::Neg { dst, a, size }),
            Uop::Ext {
                dst,
                a,
                from,
                to,
                signed,
            } => ops.push(FastOp::Ext {
                dst,
                a,
                from,
                to,
                signed,
            }),
            Uop::Bswap { dst, a } => ops.push(FastOp::Bswap { dst, a }),
            Uop::Lea {
                dst,
                base,
                index,
                disp,
            } => ops.push(FastOp::Lea {
                dst,
                base,
                index,
                disp,
            }),
            Uop::SetCc {
                cc,
                size,
                dst,
                a,
                b,
            } => ops.push(FastOp::SetCc {
                cc,
                size,
                dst,
                a,
                b,
            }),
            Uop::GetEflags { dst } => ops.push(FastOp::GetEflags { dst }),
            Uop::GetCf { dst } => ops.push(FastOp::GetCf { dst }),
            Uop::TestCc { dst, cc } => ops.push(FastOp::TestCc { dst, cc }),
            Uop::Select { dst, cond, a, b } => ops.push(FastOp::Select { dst, cond, a, b }),
            Uop::SetCarry { mode } => ops.push(FastOp::SetCarry { mode }),
            Uop::SetDirection { set } => ops.push(FastOp::SetDirection { set }),
            Uop::SetEipImm { target } if last => exit = FastExit::Jump(target),
            Uop::BrCc { cc, target } if last => exit = FastExit::BrCc { cc, target },
            Uop::BrCondT { cond, target } if last => exit = FastExit::BrCondT { cond, target },
            _ => return None,
        }
    }
    // The executor runs temps out of a persistent scratch buffer without
    // re-zeroing it between blocks, so every temp read must be dominated
    // by a write inside this block — otherwise a stale value from an
    // earlier block could leak in and the block is not eligible.
    let mut written = [false; 256];
    for op in &ops {
        let mut reads: [Option<u8>; 3] = [None; 3];
        let mut write: Option<u8> = None;
        match *op {
            FastOp::Const { dst, .. }
            | FastOp::ReadReg { dst, .. }
            | FastOp::ReadSel { dst, .. }
            | FastOp::GetEflags { dst }
            | FastOp::GetCf { dst }
            | FastOp::TestCc { dst, .. }
            | FastOp::Lea { dst, .. } => write = Some(dst),
            FastOp::WriteReg { src, .. } => reads[0] = Some(src),
            FastOp::Alu { dst, a, b, .. } => {
                reads[0] = Some(a);
                reads[1] = Some(b);
                write = Some(dst);
            }
            FastOp::Not { dst, a, .. }
            | FastOp::Neg { dst, a, .. }
            | FastOp::Ext { dst, a, .. }
            | FastOp::Bswap { dst, a } => {
                reads[0] = Some(a);
                write = Some(dst);
            }
            // SetCc only *reads* its three fields (dst is the ALU result).
            FastOp::SetCc { dst, a, b, .. } => {
                reads[0] = Some(dst);
                reads[1] = Some(a);
                reads[2] = Some(b);
            }
            FastOp::Select { dst, cond, a, b } => {
                reads[0] = Some(cond);
                reads[1] = Some(a);
                reads[2] = Some(b);
                write = Some(dst);
            }
            FastOp::SetCarry { .. } | FastOp::SetDirection { .. } => {}
        }
        for r in reads.into_iter().flatten() {
            if !written[r as usize] {
                return None;
            }
        }
        if let Some(w) = write {
            written[w as usize] = true;
        }
    }
    if let FastExit::BrCondT { cond, .. } = exit {
        if !written[cond as usize] {
            return None;
        }
    }
    let mut cov = Vec::with_capacity(2);
    let (w0, w1) = (bits as u64, (bits >> 64) as u64);
    if w0 != 0 {
        cov.push((0u16, w0));
    }
    if w1 != 0 {
        cov.push((1u16, w1));
    }
    Some(FastBlock {
        ops: ops.into_boxed_slice(),
        cov: cov.into_boxed_slice(),
        end: tb.end,
        exit,
    })
}

/// Executes a fast block. Equivalent to `exec_tb` on the source block
/// (same registers, flags, coverage bits, and successor), minus the
/// per-µop fault/EIP bookkeeping. `t` is caller-owned scratch for temps;
/// it is *not* cleared here — [`compile`] proved every read is dominated
/// by a write, so stale contents are unobservable.
pub fn exec_fast(core: &mut Core, t: &mut [u32; 256], fb: &FastBlock) -> TbExit {
    static UOP_COV: std::sync::OnceLock<pokemu_rt::CoverageMap> = std::sync::OnceLock::new();
    let uop_cov =
        *UOP_COV.get_or_init(|| pokemu_rt::coverage::map("coverage.uop", UOP_COVERAGE_BITS));
    for &(w, m) in fb.cov.iter() {
        uop_cov.or_word(w as usize, m);
    }
    for op in fb.ops.iter() {
        match *op {
            FastOp::Const { dst, val } => t[dst as usize] = val,
            FastOp::ReadReg { dst, reg, size } => t[dst as usize] = read_reg(&core.m, reg, size),
            FastOp::WriteReg { reg, size, src } => {
                write_reg(&mut core.m, reg, size, t[src as usize])
            }
            FastOp::ReadSel { dst, seg } => {
                t[dst as usize] = core.m.segs[seg as usize].selector as u32
            }
            FastOp::Alu {
                op,
                size,
                dst,
                a,
                b,
            } => t[dst as usize] = alu_eval(op, size, t[a as usize], t[b as usize]),
            FastOp::Not { dst, a, size } => t[dst as usize] = !t[a as usize] & mask(size),
            FastOp::Neg { dst, a, size } => {
                t[dst as usize] = (t[a as usize] & mask(size)).wrapping_neg() & mask(size)
            }
            FastOp::Ext {
                dst,
                a,
                from,
                to,
                signed,
            } => {
                let v = t[a as usize] & mask(from);
                let v = if signed && to > from {
                    let shift = 32 - from * 8;
                    (((v << shift) as i32) >> shift) as u32
                } else {
                    v
                };
                t[dst as usize] = v & mask(to);
            }
            FastOp::Bswap { dst, a } => t[dst as usize] = t[a as usize].swap_bytes(),
            FastOp::Lea {
                dst,
                base,
                index,
                disp,
            } => {
                let mut ea = disp;
                if let Some(b) = base {
                    ea = ea.wrapping_add(core.m.gpr[b as usize]);
                }
                if let Some((i, s)) = index {
                    ea = ea.wrapping_add(core.m.gpr[i as usize] << s);
                }
                t[dst as usize] = ea;
            }
            FastOp::SetCc {
                cc,
                size,
                dst,
                a,
                b,
            } => set_cc(
                &mut core.m,
                cc,
                size,
                t[dst as usize],
                t[a as usize],
                t[b as usize],
            ),
            FastOp::GetEflags { dst } => t[dst as usize] = core.m.eflags(),
            FastOp::GetCf { dst } => t[dst as usize] = core.m.cc.cf(),
            FastOp::TestCc { dst, cc } => t[dst as usize] = cond_eval_lazy(&core.m, cc) as u32,
            FastOp::Select { dst, cond, a, b } => {
                t[dst as usize] = if t[cond as usize] != 0 {
                    t[a as usize]
                } else {
                    t[b as usize]
                };
            }
            FastOp::SetCarry { mode } => {
                let f = core.m.eflags();
                let cf = 1u32 << pokemu_isa::state::flags::CF;
                let nf = match mode {
                    0 => f & !cf,
                    1 => f | cf,
                    _ => f ^ cf,
                };
                core.m.set_eflags(nf);
            }
            FastOp::SetDirection { set } => {
                let f = core.m.eflags();
                let df = 1u32 << pokemu_isa::state::flags::DF;
                let nf = if set { f | df } else { f & !df };
                core.m.set_eflags(nf);
            }
        }
    }
    core.m.eip = fb.end;
    match fb.exit {
        FastExit::Fall => TbExit::Fallthrough(fb.end),
        FastExit::Jump(target) => TbExit::Taken(target),
        FastExit::BrCc { cc, target } => {
            if cond_eval_lazy(&core.m, cc) {
                TbExit::Taken(target)
            } else {
                TbExit::Fallthrough(fb.end)
            }
        }
        FastExit::BrCondT { cond, target } => {
            if t[cond as usize] != 0 {
                TbExit::Taken(target)
            } else {
                TbExit::Fallthrough(fb.end)
            }
        }
    }
}
