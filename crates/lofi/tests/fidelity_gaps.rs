//! Direct tests of each seeded Lo-Fi fidelity gap (paper §6.2), each
//! checked against the reference behavior and against its fix.

use pokemu_hifi::{HiFi, RunExit as HiExit};
use pokemu_isa::interp::Quirks;
use pokemu_isa::state::{attrs, Exception, Gpr, RawDescriptor, Seg};
use pokemu_lofi::{Fidelity, Lofi, RunExit as LoExit};
use pokemu_symx::Dom;

const CODE: u32 = 0x1000;
const GDT: u32 = 0x9000;

fn hifi_env() -> HiFi {
    let mut emu = HiFi::new().with_quirks(Quirks::HARDWARE);
    {
        let (d, m) = emu.parts_mut();
        m.cr0 = d.constant(32, 1);
        m.eip = CODE;
        m.gpr[Gpr::Esp as usize] = d.constant(32, 0x8000);
        m.gdtr.base = GDT;
        m.gdtr.limit = d.constant(16, 127);
        for seg in Seg::ALL {
            let typ: u64 = if seg == Seg::Cs { 0xb } else { 0x3 };
            let a = typ
                | (1 << attrs::S as u64)
                | (1 << attrs::P as u64)
                | (1 << attrs::DB as u64)
                | (1 << attrs::G as u64);
            let s = &mut m.segs[seg as usize];
            s.selector = d.constant(16, 0x8);
            s.cache.base = d.constant(32, 0);
            s.cache.limit = d.constant(32, 0xffff_ffff);
            s.cache.attrs = d.constant(attrs::WIDTH, a);
        }
    }
    emu
}

fn lofi_env(fid: Fidelity) -> Lofi {
    let mut emu = Lofi::new(fid);
    {
        let m = emu.machine_mut();
        m.cr0 = 1;
        m.eip = CODE;
        m.gpr[Gpr::Esp as usize] = 0x8000;
        m.gdtr = (GDT, 127);
        for i in 0..6 {
            let typ: u16 = if i == 1 { 0xb } else { 0x3 };
            m.segs[i] = pokemu_lofi::state::LofiSeg {
                selector: 0x8,
                base: 0,
                limit: 0xffff_ffff,
                attrs: typ
                    | (1 << attrs::S as u16)
                    | (1 << attrs::P as u16)
                    | (1 << attrs::DB as u16)
                    | (1 << attrs::G as u16),
            };
        }
    }
    emu
}

/// §6.2: `iret` pop order. With paging off we can't fault mid-pop here, but
/// the accessed/dirty evidence appears under paging; this test instead pins
/// the *functional* agreement: a valid iret frame gives identical results on
/// both orders.
#[test]
fn iret_functional_agreement() {
    // Frame: eip=0x1100, cs=0x08, eflags with ZF.
    let mut code = vec![];
    // push 0x46; push 0x08; push 0x1100 ; iret — at 0x1100: hlt
    for (op, v) in [(0x68u8, 0x46u32), (0x68, 0x08), (0x68, 0x1100)] {
        code.push(op);
        code.extend_from_slice(&v.to_le_bytes());
    }
    code.push(0xcf);
    // Descriptor for selector 0x08 (entry 1): flat code.
    let desc = RawDescriptor::flat(0xb).encode();

    let mut hi = hifi_env();
    hi.load_image(CODE, &code);
    hi.load_image(0x1100, &[0xf4]);
    hi.load_image(GDT + 8, &desc);
    let he = hi.run(64);
    assert_eq!(he, HiExit::Halted);

    for fid in [
        Fidelity::QEMU_LIKE,
        Fidelity {
            iret_ascending: true,
            ..Fidelity::QEMU_LIKE
        },
    ] {
        let mut lo = lofi_env(fid);
        lo.load_image(CODE, &code);
        lo.load_image(0x1100, &[0xf4]);
        lo.load_image(GDT + 8, &desc);
        let le = lo.run(64);
        assert_eq!(le, LoExit::Halted);
        assert_eq!(lo.machine().eip, 0x1101);
        assert_ne!(
            lo.machine().eflags() & (1 << 6),
            0,
            "ZF loaded from the frame"
        );
    }
}

/// §6.2: `cmpxchg` updates the accumulator before the write check fails —
/// the accumulator is corrupted on the QEMU-like profile, preserved on the
/// fixed one. (The reference preserves it.)
#[test]
fn cmpxchg_accumulator_corruption() {
    // Make DS read-only so the destination write faults, with the
    // not-equal case updating EAX first in the buggy ordering.
    // mov eax, 5; mov ebx, 9; cmpxchg [0x3000], ebx; hlt — with [0x3000]=7.
    let mut code = vec![0xb8, 5, 0, 0, 0, 0xbb, 9, 0, 0, 0];
    code.extend_from_slice(&[0x0f, 0xb1, 0x1d, 0x00, 0x30, 0x00, 0x00]);
    code.push(0xf4);

    let run_lofi = |fid: Fidelity| {
        let mut lo = lofi_env(Fidelity {
            enforce_segment_checks: true,
            ..fid
        });
        // DS read-only (type 0x1).
        lo.machine_mut().segs[Seg::Ds as usize].attrs =
            0x1 | (1 << attrs::S as u16) | (1 << attrs::P as u16);
        lo.machine_mut().ram[0x3000] = 7;
        lo.load_image(CODE, &code);
        let exit = lo.run(64);
        (exit, lo.machine().gpr[0])
    };

    let (exit, eax) = run_lofi(Fidelity::QEMU_LIKE);
    assert_eq!(exit, LoExit::Exception(Exception::Gp(0)));
    assert_eq!(
        eax, 7,
        "QEMU-like: accumulator corrupted before the faulting write"
    );

    let (exit, eax) = run_lofi(Fidelity {
        atomic_cmpxchg: true,
        ..Fidelity::QEMU_LIKE
    });
    assert_eq!(exit, LoExit::Exception(Exception::Gp(0)));
    assert_eq!(eax, 5, "fixed: accumulator preserved on fault");

    // The reference interpreter preserves it too.
    let mut hi = hifi_env();
    {
        let (d, m) = hi.parts_mut();
        m.segs[Seg::Ds as usize].cache.attrs = d.constant(
            attrs::WIDTH,
            0x1 | (1 << attrs::S as u64) | (1 << attrs::P as u64),
        );
        let v = d.constant(8, 7);
        m.mem.write_u8(0x3000, v);
    }
    hi.load_image(CODE, &code);
    let he = hi.run(64);
    assert_eq!(he, HiExit::Exception(Exception::Gp(0)));
    let (d, m) = hi.parts_mut();
    assert_eq!(d.as_const(m.gpr[0]), Some(5));
}

/// §6.2: the descriptor accessed flag. Loading a not-yet-accessed segment
/// sets type bit 0 in the GDT on the reference; the QEMU-like profile
/// leaves it clear.
#[test]
fn accessed_flag_not_maintained() {
    let desc = RawDescriptor::flat(0x2).encode(); // writable data, NOT accessed
                                                  // mov ax, 0x10 ; mov es, ax ; hlt  (selector 0x10 = entry 2)
    let code = [0x66, 0xb8, 0x10, 0x00, 0x8e, 0xc0, 0xf4];

    let mut hi = hifi_env();
    hi.load_image(GDT + 16, &desc);
    hi.load_image(CODE, &code);
    assert_eq!(hi.run(16), HiExit::Halted);
    let (d, m) = hi.parts_mut();
    let b5 = m.mem.read_u8(d, GDT + 16 + 5);
    assert_eq!(
        d.as_const(b5).map(|v| v & 1),
        Some(1),
        "reference sets the accessed bit"
    );

    let mut lo = lofi_env(Fidelity::QEMU_LIKE);
    lo.load_image(GDT + 16, &desc);
    lo.load_image(CODE, &code);
    assert_eq!(lo.run(16), LoExit::Halted);
    assert_eq!(
        lo.machine().ram[(GDT + 16 + 5) as usize] & 1,
        0,
        "QEMU-like leaves it clear"
    );

    let mut lo = lofi_env(Fidelity {
        set_accessed_bit: true,
        ..Fidelity::QEMU_LIKE
    });
    lo.load_image(GDT + 16, &desc);
    lo.load_image(CODE, &code);
    assert_eq!(lo.run(16), LoExit::Halted);
    assert_eq!(
        lo.machine().ram[(GDT + 16 + 5) as usize] & 1,
        1,
        "fixed sets it"
    );
}

/// §6.2: `rdmsr` of an invalid MSR returns zeros instead of #GP.
#[test]
fn rdmsr_invalid_msr() {
    // mov ecx, 0x1234; mov eax, 0xffffffff; mov edx, 0xffffffff; rdmsr; hlt
    let mut code = vec![
        0xb9, 0x34, 0x12, 0, 0, 0xb8, 0xff, 0xff, 0xff, 0xff, 0xba, 0xff, 0xff, 0xff, 0xff,
    ];
    code.extend_from_slice(&[0x0f, 0x32, 0xf4]);

    let mut lo = lofi_env(Fidelity::QEMU_LIKE);
    lo.load_image(CODE, &code);
    assert_eq!(lo.run(16), LoExit::Halted, "QEMU-like: no fault");
    assert_eq!(lo.machine().gpr[0], 0);
    assert_eq!(lo.machine().gpr[2], 0);

    let mut lo = lofi_env(Fidelity {
        msr_gp_on_invalid: true,
        ..Fidelity::QEMU_LIKE
    });
    lo.load_image(CODE, &code);
    assert_eq!(
        lo.run(16),
        LoExit::Exception(Exception::Gp(0)),
        "fixed build faults"
    );

    let mut hi = hifi_env();
    hi.load_image(CODE, &code);
    assert_eq!(
        hi.run(16),
        HiExit::Exception(Exception::Gp(0)),
        "reference faults"
    );
}

/// §6.2: `leave` with an unreadable stack page corrupts ESP.
#[test]
fn leave_corrupts_esp_on_fault() {
    // Enable paging with page 0x30 unmapped; ebp points into it.
    let build = |fid: Fidelity| {
        let mut lo = lofi_env(fid);
        {
            let m = lo.machine_mut();
            m.phys_write(0x10000, 0x11000 | 0x3, 4);
            for i in 0..1024u32 {
                let pte = if i == 0x30 { 0 } else { (i << 12) | 0x3 };
                m.phys_write(0x11000 + i * 4, pte, 4);
            }
            m.cr3 = 0x10000;
            m.cr0 = 1 | (1 << 31);
            m.gpr[Gpr::Ebp as usize] = 0x30010;
        }
        // leave; hlt
        lo.load_image(CODE, &[0xc9, 0xf4]);
        let exit = lo.run(16);
        (exit, lo.machine().gpr[Gpr::Esp as usize])
    };
    let (exit, esp) = build(Fidelity::QEMU_LIKE);
    assert!(matches!(exit, LoExit::Exception(Exception::Pf(_, 0x30010))));
    assert_eq!(
        esp, 0x30010,
        "QEMU-like: ESP clobbered with EBP before the fault"
    );

    let (exit, esp) = build(Fidelity {
        atomic_leave: true,
        ..Fidelity::QEMU_LIKE
    });
    assert!(matches!(exit, LoExit::Exception(Exception::Pf(_, 0x30010))));
    assert_eq!(esp, 0x8000, "fixed: ESP preserved");
}

/// The TB cache invalidates when the descriptor table is modified through
/// paging-enabled stores (regression guard for dirty-page tracking).
#[test]
fn dirty_tracking_survives_paging() {
    let mut lo = lofi_env(Fidelity::QEMU_LIKE);
    {
        let m = lo.machine_mut();
        m.phys_write(0x10000, 0x11000 | 0x3, 4);
        for i in 0..1024u32 {
            m.phys_write(0x11000 + i * 4, (i << 12) | 0x3, 4);
        }
        m.cr3 = 0x10000;
        m.cr0 = 1 | (1 << 31);
    }
    // Self-modifying code under paging: overwrite the hlt at 0x1100 with
    // inc edx, then jump there.
    lo.load_image(
        CODE,
        &[
            0xc6, 0x05, 0x00, 0x11, 0x00, 0x00, 0x42, 0xe9, 0xf4, 0x00, 0x00, 0x00,
        ],
    );
    lo.load_image(0x1100, &[0xf4, 0xf4]);
    assert_eq!(lo.run(32), LoExit::Halted);
    assert_eq!(lo.machine().gpr[2], 1, "rewritten instruction must execute");
    assert!(lo.stats().invalidations >= 1);
}
