//! Differential fuzzing: the Lo-Fi DBT vs the reference interpreter.
//!
//! The two execution cores share no semantics code, so agreement on random
//! instruction streams is strong evidence for both. Streams are built from
//! register-only instructions whose results are fully architecturally
//! defined (no memory operands, no undefined flags), so the comparison is
//! exact: all GPRs, all status flags.

use pokemu_hifi::HiFi;
use pokemu_isa::interp::Quirks;
use pokemu_isa::state::{attrs, flags as fl, Seg};
use pokemu_lofi::{Fidelity, Lofi};
use pokemu_rt::Rng;
use pokemu_symx::Dom;

const CODE: u32 = 0x1000;
const STACK: u32 = 0x8000;

fn flat_hifi() -> HiFi {
    let mut emu = HiFi::new().with_quirks(Quirks::HARDWARE);
    {
        let (d, m) = emu.parts_mut();
        m.cr0 = d.constant(32, 1);
        m.eip = CODE;
        m.gpr[4] = d.constant(32, STACK as u64);
        for seg in Seg::ALL {
            let typ: u64 = if seg == Seg::Cs { 0xb } else { 0x3 };
            let a = typ | (1 << attrs::S as u64) | (1 << attrs::P as u64) | (1 << attrs::DB as u64);
            let s = &mut m.segs[seg as usize];
            s.selector = d.constant(16, 0x8);
            s.cache.base = d.constant(32, 0);
            s.cache.limit = d.constant(32, 0xffff_ffff);
            s.cache.attrs = d.constant(attrs::WIDTH, a);
        }
    }
    emu
}

fn flat_lofi() -> Lofi {
    let mut emu = Lofi::new(Fidelity::QEMU_LIKE);
    {
        let m = emu.machine_mut();
        m.cr0 = 1;
        m.eip = CODE;
        m.gpr[4] = STACK;
        for i in 0..6 {
            let typ: u16 = if i == 1 { 0xb } else { 0x3 };
            m.segs[i] = pokemu_lofi::state::LofiSeg {
                selector: 0x8,
                base: 0,
                limit: 0xffff_ffff,
                attrs: typ
                    | (1 << attrs::S as u16)
                    | (1 << attrs::P as u16)
                    | (1 << attrs::DB as u16),
            };
        }
    }
    emu
}

/// Emits one random register-only instruction with fully defined results.
fn random_insn(rng: &mut Rng, out: &mut Vec<u8>) {
    let r1 = rng.gen_range(0..8u8);
    let r2 = rng.gen_range(0..8u8);
    let modrm_rr = 0xc0 | (r2 << 3) | r1;
    match rng.gen_range(0..14u32) {
        // ALU r/m32, r32 (add/or/adc/sbb/and/sub/xor/cmp)
        0 => out.extend_from_slice(&[
            [0x01, 0x09, 0x11, 0x19, 0x21, 0x29, 0x31, 0x39][rng.gen_range(0..8usize)],
            modrm_rr,
        ]),
        // ALU r32, imm32
        1 => {
            let op = 0xc0 | (rng.gen_range(0..8u8) << 3) | r1;
            out.push(0x81);
            out.push(op);
            out.extend_from_slice(&rng.gen::<u32>().to_le_bytes());
        }
        // mov r32, imm32
        2 => {
            out.push(0xb8 + r1);
            out.extend_from_slice(&rng.gen::<u32>().to_le_bytes());
        }
        // mov r32, r32
        3 => out.extend_from_slice(&[0x89, modrm_rr]),
        // inc/dec r32
        4 => out.push(if rng.gen() { 0x40 + r1 } else { 0x48 + r1 }),
        // xchg
        5 => out.extend_from_slice(&[0x87, modrm_rr]),
        // movzx/movsx r32, r/m8 (reg form)
        6 => out.extend_from_slice(&[0x0f, if rng.gen() { 0xb6 } else { 0xbe }, modrm_rr]),
        // setcc r/m8
        7 => out.extend_from_slice(&[0x0f, 0x90 + rng.gen_range(0..16u8), 0xc0 | r1]),
        // cmovcc
        8 => out.extend_from_slice(&[0x0f, 0x40 + rng.gen_range(0..16u8), modrm_rr]),
        // test r/m32, r32
        9 => out.extend_from_slice(&[0x85, modrm_rr]),
        // neg/not r32 (f7 /3, /2)
        10 => out.extend_from_slice(&[0xf7, if rng.gen() { 0xd8 } else { 0xd0 } | r1]),
        // bswap
        11 => out.extend_from_slice(&[0x0f, 0xc8 + r1]),
        // lahf / sahf / cmc / clc / stc / cld / std
        12 => out.push([0x9f, 0x9e, 0xf5, 0xf8, 0xf9, 0xfc, 0xfd][rng.gen_range(0..7usize)]),
        // 16-bit ALU via the operand-size prefix
        _ => out.extend_from_slice(&[0x66, [0x01, 0x29, 0x31][rng.gen_range(0..3usize)], modrm_rr]),
    }
}

#[test]
fn random_register_streams_agree_exactly() {
    let mut rng = Rng::seed_from_u64(0xFACADE);
    for case in 0..80 {
        let mut code = Vec::new();
        // Seed registers with random values.
        for r in 0..8u8 {
            if r == 4 {
                continue; // keep ESP
            }
            code.push(0xb8 + r);
            code.extend_from_slice(&rng.gen::<u32>().to_le_bytes());
        }
        for _ in 0..rng.gen_range(4..40u32) {
            random_insn(&mut rng, &mut code);
        }
        code.push(0xf4); // hlt

        let mut hi = flat_hifi();
        hi.load_image(CODE, &code);
        let he = hi.run(10_000);
        let hs = hi.snapshot(he);

        let mut lo = flat_lofi();
        lo.load_image(CODE, &code);
        let le = lo.run(10_000);
        let ls = lo.snapshot(le);

        assert_eq!(hs.outcome, ls.outcome, "case {case}: outcomes differ");
        assert_eq!(
            hs.gpr, ls.gpr,
            "case {case}: registers differ\ncode: {code:02x?}"
        );
        assert_eq!(
            hs.eflags & fl::STATUS,
            ls.eflags & fl::STATUS,
            "case {case}: status flags differ\ncode: {code:02x?}"
        );
        assert_eq!(hs.eip, ls.eip, "case {case}: EIP differs");
    }
}

#[test]
fn shift_streams_agree_on_defined_flags() {
    // Shifts have undefined AF (and OF for counts != 1); compare everything
    // else, exercising the Shift helper against the reference formulas.
    let mut rng = Rng::seed_from_u64(0x5417);
    for case in 0..60 {
        let mut code = Vec::new();
        for r in 0..4u8 {
            code.push(0xb8 + r);
            code.extend_from_slice(&rng.gen::<u32>().to_le_bytes());
        }
        for _ in 0..rng.gen_range(2..12u32) {
            let r1 = rng.gen_range(0..4u8);
            let g = rng.gen_range(0..8u8);
            let count = rng.gen_range(0..40u8);
            code.extend_from_slice(&[0xc1, 0xc0 | (g << 3) | r1, count]);
        }
        code.push(0xf4);

        let mut hi = flat_hifi();
        hi.load_image(CODE, &code);
        let he = hi.run(10_000);
        let hs = hi.snapshot(he);
        let mut lo = flat_lofi();
        lo.load_image(CODE, &code);
        let le = lo.run(10_000);
        let ls = lo.snapshot(le);

        assert_eq!(
            hs.gpr, ls.gpr,
            "case {case}: registers differ\ncode: {code:02x?}"
        );
        // CF, ZF, SF, PF are defined for shifts (OF only for count 1; AF
        // never) — compare the always-defined subset.
        let defined = (1 << fl::CF) | (1 << fl::ZF) | (1 << fl::SF) | (1 << fl::PF);
        assert_eq!(
            hs.eflags & defined,
            ls.eflags & defined,
            "case {case}: defined shift flags differ\ncode: {code:02x?}"
        );
    }
}

#[test]
fn mul_div_streams_agree_on_registers() {
    let mut rng = Rng::seed_from_u64(0xD1D);
    for case in 0..60 {
        let mut code = Vec::new();
        for r in 0..4u8 {
            code.push(0xb8 + r);
            code.extend_from_slice(&rng.gen::<u32>().to_le_bytes());
        }
        // One mul/imul/div/idiv on a register (divide-by-zero cases included:
        // both must raise #DE identically).
        let g = rng.gen_range(4..8u8);
        let r1 = rng.gen_range(0..4u8);
        code.extend_from_slice(&[0xf7, 0xc0 | (g << 3) | r1]);
        code.push(0xf4);

        let mut hi = flat_hifi();
        hi.load_image(CODE, &code);
        let he = hi.run(10_000);
        let hs = hi.snapshot(he);
        let mut lo = flat_lofi();
        lo.load_image(CODE, &code);
        let le2 = lo.run(10_000);
        let ls = lo.snapshot(le2);

        assert_eq!(
            hs.outcome, ls.outcome,
            "case {case}: outcome\ncode: {code:02x?}"
        );
        assert_eq!(hs.gpr, ls.gpr, "case {case}: registers\ncode: {code:02x?}");
    }
}
