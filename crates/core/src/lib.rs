//! # PokeEMU-rs
//!
//! A from-scratch Rust reproduction of *"Path-Exploration Lifting: Hi-Fi
//! Tests for Lo-Fi Emulators"* (Martignoni, McCamant, Poosankam, Song,
//! Maniatis — ASPLOS 2012).
//!
//! The facade crate re-exports the whole system:
//!
//! * [`solver`] — a from-scratch QF_BV decision procedure (STP/Z3 stand-in);
//! * [`symx`] — the online symbolic execution engine (FuzzBALL analogue);
//! * [`isa`] — the VX86 guest ISA: decoder, protection machinery, and
//!   reference semantics generic over a value domain;
//! * [`hifi`] — the Hi-Fi interpreter emulator (Bochs analogue);
//! * [`lofi`] — the Lo-Fi dynamic binary translator (QEMU analogue);
//! * [`hwref`] — the hardware oracle behind a simulated VMM (KVM analogue);
//! * [`explore`] — instruction-set and machine-state-space exploration;
//! * [`testgen`] — baseline initializer, gadgets, and test programs;
//! * [`harness`] — cross-validation, the undefined-behavior filter,
//!   root-cause clustering, and the random-testing baseline.
//!
//! ## Quick start
//!
//! ```no_run
//! use pokemu::harness::{run_cross_validation, PipelineConfig};
//!
//! // Explore every instruction starting with byte 0xC9 (`leave`), generate
//! // tests, run them on all three targets, and cluster the differences.
//! let report = run_cross_validation(PipelineConfig {
//!     first_byte: Some(0xc9),
//!     ..PipelineConfig::default()
//! });
//! println!("{} paths, {} Lo-Fi differences", report.total_paths, report.lofi_differences);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pokemu_explore as explore;
pub use pokemu_harness as harness;
pub use pokemu_hifi as hifi;
pub use pokemu_hwref as hwref;
pub use pokemu_isa as isa;
pub use pokemu_lofi as lofi;
pub use pokemu_solver as solver;
pub use pokemu_symx as symx;
pub use pokemu_testgen as testgen;
