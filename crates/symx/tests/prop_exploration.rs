//! Property tests for the exploration engine: completeness and soundness of
//! the decision tree against brute-force enumeration.

use std::collections::{HashMap, HashSet};

use pokemu_solver::VarId;
use pokemu_symx::{Dom, Executor, ExploreConfig};

/// A tiny branching program over one 4-bit input: a cascade of threshold
/// branches. Returns the trace of branch decisions as a bitmask.
fn threshold_program<D: Dom>(d: &mut D, x: D::V, cuts: &[u8]) -> u32 {
    let mut trace = 0u32;
    for (i, &c) in cuts.iter().enumerate() {
        let k = d.constant(4, c as u64 & 0xf);
        let lt = d.ult(x, k);
        if d.branch(lt, "threshold") {
            trace |= 1 << i;
        }
    }
    trace
}

pokemu_rt::prop! {
    /// Exploration discovers exactly the set of traces reachable by some
    /// concrete input — no more, no fewer (soundness + completeness).
    fn exploration_matches_brute_force(g, cases = 24) {
        let cuts = g.vec(1, 5, |g| g.range(0u8..16));
        // Brute force over all 16 inputs.
        let mut expected: HashSet<u32> = HashSet::new();
        for x in 0u8..16 {
            let mut trace = 0u32;
            for (i, &c) in cuts.iter().enumerate() {
                if (x & 0xf) < (c & 0xf) {
                    trace |= 1 << i;
                }
            }
            expected.insert(trace);
        }
        // Symbolic exploration.
        let mut exec = Executor::new();
        let cuts2 = cuts.clone();
        let r = exec.explore(move |e| {
            let x = e.fresh_input(4, "x");
            threshold_program(e, x, &cuts2)
        });
        assert!(r.complete);
        let got: HashSet<u32> = r.paths.iter().map(|p| p.value).collect();
        assert_eq!(&got, &expected, "traces must match brute force");
        assert_eq!(r.paths.len(), expected.len(), "one path per distinct trace");

        // Soundness: each path's model reproduces its trace concretely.
        for p in &r.paths {
            let x = p.model.value_or(VarId(0), 0) as u8;
            let mut trace = 0u32;
            for (i, &c) in cuts.iter().enumerate() {
                if (x & 0xf) < (c & 0xf) {
                    trace |= 1 << i;
                }
            }
            assert_eq!(trace, p.value, "model input {} must replay the path", x);
        }
    }

    /// Path conditions always evaluate to true under their own model.
    fn models_satisfy_path_conditions(g, cases = 24) {
        let cuts = g.vec(1, 4, |g| g.range(0u8..16));
        let mut exec = Executor::new();
        let cuts2 = cuts.clone();
        let r = exec.explore(move |e| {
            let x = e.fresh_input(4, "x");
            let y = e.fresh_input(4, "y");
            let s = e.add(x, y);
            threshold_program(e, s, &cuts2)
        });
        assert!(r.complete);
        for p in &r.paths {
            let mut env: HashMap<VarId, u64> = HashMap::new();
            for (_, v) in exec.named_vars() {
                env.insert(v, p.model.value_or(v, 0));
            }
            for &t in &p.path_condition {
                assert_eq!(exec.pool().eval(t, &env), 1);
            }
        }
    }

    /// `concretize` enumerates exactly the feasible values of a constrained
    /// word.
    fn concretize_enumeration_is_exact(g, cases = 24) {
        let lo = g.range(0u8..12);
        let span = g.range(1u8..5);
        let hi = lo.saturating_add(span).min(15);
        let mut exec = Executor::new();
        let r = exec.explore(move |e| {
            let x = e.fresh_input(4, "x");
            let lov = e.constant(4, lo as u64);
            let hiv = e.constant(4, hi as u64);
            let ge = e.ule(lov, x);
            e.assume(ge);
            let le = e.ule(x, hiv);
            e.assume(le);
            e.concretize(x, "value")
        });
        assert!(r.complete);
        let mut got: Vec<u64> = r.paths.iter().map(|p| p.value).collect();
        got.sort_unstable();
        let expected: Vec<u64> = (lo as u64..=hi as u64).collect();
        assert_eq!(got, expected);
    }
}

/// The decision tree never revisits a completed path even when the program
/// contains nested loops.
#[test]
fn nested_loops_terminate_and_cover() {
    let mut exec = Executor::with_config(ExploreConfig {
        max_paths: 256,
        ..Default::default()
    });
    let r = exec.explore(|e| {
        let n = e.fresh_input(4, "n");
        let four = e.constant(4, 4);
        let bounded = e.ult(n, four);
        e.assume(bounded);
        let mut total = 0u32;
        // for i in 0..n { for j in 0..i { total += 1 } }
        let mut i = 0u64;
        loop {
            let iv = e.constant(4, i);
            let c = e.ult(iv, n);
            if !e.branch(c, "outer") {
                break;
            }
            let mut j = 0u64;
            loop {
                let jv = e.constant(4, j);
                let c = e.ult(jv, iv);
                if !e.branch(c, "inner") {
                    break;
                }
                total += 1;
                j += 1;
            }
            i += 1;
        }
        total
    });
    assert!(r.complete);
    // n in 0..=3 -> totals 0, 0, 1, 3.
    let mut totals: Vec<u32> = r.paths.iter().map(|p| p.value).collect();
    totals.sort_unstable();
    assert_eq!(totals, vec![0, 0, 1, 3]);
}
