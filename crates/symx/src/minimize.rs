//! State-difference minimization (paper §3.4).
//!
//! The decision procedure assigns arbitrary values to bits that the explored
//! path never constrained, which makes generated tests noisy and can even
//! break them (e.g. randomizing the permissions of the code segment that the
//! test itself must be fetched through). The fix is a greedy single pass:
//! start from the solver's satisfying assignment, and for each bit that
//! differs from the *baseline* machine state, try resetting it to the
//! baseline value; keep the reset whenever the path condition still holds.
//!
//! Because the assignment is total, "still holds" needs only *evaluation* of
//! the path condition, never another solver call — the same algorithm the
//! paper describes ("our current approach based on evaluation was simple to
//! implement", §3.4) at the same cost.

use std::collections::HashMap;

use pokemu_solver::{mask, Model, TermId, TermPool, VarId};

/// Statistics from one minimization run (experiment E8).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MinimizeStats {
    /// Bits differing from the baseline before minimization.
    pub bits_before: usize,
    /// Bits differing from the baseline after minimization.
    pub bits_after: usize,
    /// Path-condition evaluations performed.
    pub evaluations: usize,
}

/// Greedily minimizes `model` against `baseline`, preserving satisfaction of
/// `path_condition`.
///
/// `baseline` maps each variable to its value in the baseline machine state;
/// variables absent from it default to zero. Variables absent from `model`
/// (never constrained by the path) are taken at baseline, matching the
/// motivation of §3.4.
///
/// Returns the minimized model (a total assignment over the union of model
/// and baseline variables) plus statistics.
pub fn minimize(
    pool: &TermPool,
    path_condition: &[TermId],
    model: &Model,
    baseline: &HashMap<VarId, u64>,
) -> (Model, MinimizeStats) {
    let mut stats = MinimizeStats::default();
    let base = |v: VarId| baseline.get(&v).copied().unwrap_or(0);

    // Total working assignment: baseline overlaid with the solver model.
    let mut env: HashMap<VarId, u64> = HashMap::new();
    for i in 0..pool.num_vars() {
        let v = VarId(i as u32);
        let w = pool.var_width(v);
        env.insert(v, mask(w, model.value(v).unwrap_or_else(|| base(v))));
    }

    let satisfied = |env: &HashMap<VarId, u64>, stats: &mut MinimizeStats| -> bool {
        stats.evaluations += 1;
        let mut cache = HashMap::new();
        path_condition
            .iter()
            .all(|&t| pool.eval_cached(t, env, &mut cache) == 1)
    };
    debug_assert!(
        satisfied(&env.clone(), &mut stats),
        "model must satisfy the path condition"
    );

    // Deterministic iteration order: by variable id, then bit index.
    let mut vars: Vec<VarId> = env.keys().copied().collect();
    vars.sort_unstable();

    // Record the initial difference size once.
    for &v in &vars {
        let w = pool.var_width(v);
        stats.bits_before += ((env[&v] ^ mask(w, base(v))).count_ones()) as usize;
    }

    // Greedy passes to a fixpoint (bounded): constraints couple variables
    // (e.g. a selector RPL and a descriptor DPL must move together), so a
    // single pass can get stuck where several passes converge. The paper
    // notes the same ("potentially making multiple passes could further
    // reduce the size of the difference", §3.4).
    for _pass in 0..4 {
        let mut changed = false;
        for &v in &vars {
            let w = pool.var_width(v);
            let bval = mask(w, base(v));
            let cur = env[&v];
            if cur == bval {
                continue;
            }
            // Whole-variable restore first (cheap and common)...
            env.insert(v, bval);
            if satisfied(&env, &mut stats) {
                changed = true;
                continue;
            }
            env.insert(v, cur);
            // ...then bit-by-bit.
            for bit in 0..w {
                let m = 1u64 << bit;
                let cur = env[&v];
                if cur & m == bval & m {
                    continue;
                }
                let flipped = (cur & !m) | (bval & m);
                env.insert(v, flipped);
                if !satisfied(&env, &mut stats) {
                    env.insert(v, cur); // revert
                } else {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for &v in &vars {
        let w = pool.var_width(v);
        stats.bits_after += ((env[&v] ^ mask(w, base(v))).count_ones()) as usize;
    }

    let minimized = Model::from_pairs(env);
    (minimized, stats)
}

/// The locations where `model` still differs from `baseline`, as
/// `(variable, value)` pairs sorted by variable. This is exactly the "test
/// state" the generator must establish (paper §4.2).
pub fn diff_from_baseline(
    pool: &TermPool,
    model: &Model,
    baseline: &HashMap<VarId, u64>,
) -> Vec<(VarId, u64)> {
    let mut out = Vec::new();
    for (v, val) in model.iter() {
        let w = pool.var_width(v);
        let b = mask(w, baseline.get(&v).copied().unwrap_or(0));
        if val != b {
            out.push((v, val));
        }
    }
    out.sort_unstable_by_key(|&(v, _)| v);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Dom;
    use crate::engine::Executor;

    #[test]
    fn unconstrained_bits_return_to_baseline() {
        let mut exec = Executor::new();
        let r = exec.explore(|e| {
            let x = e.fresh_input(32, "x");
            // Constrain only bit 31.
            let sign = e.extract(x, 31, 31);
            e.branch(sign, "sign")
        });
        assert_eq!(r.paths.len(), 2);
        let mut baseline = HashMap::new();
        baseline.insert(VarId(0), 0u64);
        for p in &r.paths {
            let (min, stats) = minimize(exec.pool(), &p.path_condition, &p.model, &baseline);
            let v = min.value_or(VarId(0), 0);
            if p.value {
                // Sign bit must stay 1; all other bits must return to 0.
                assert_eq!(v, 0x8000_0000, "only the constrained bit may differ");
                assert_eq!(stats.bits_after, 1);
            } else {
                assert_eq!(v, 0, "fully unconstrained path should equal baseline");
                assert_eq!(stats.bits_after, 0);
            }
        }
    }

    #[test]
    fn minimization_never_breaks_the_path_condition() {
        let mut exec = Executor::new();
        let r = exec.explore(|e| {
            let x = e.fresh_input(16, "x");
            let y = e.fresh_input(16, "y");
            let s = e.add(x, y);
            let k = e.constant(16, 0x1234);
            let c = e.eq(s, k);
            e.branch(c, "sum")
        });
        let baseline = HashMap::new();
        for p in &r.paths {
            let (min, _) = minimize(exec.pool(), &p.path_condition, &p.model, &baseline);
            let mut cache = HashMap::new();
            let mut env = HashMap::new();
            for (v, val) in min.iter() {
                env.insert(v, val);
            }
            for &t in &p.path_condition {
                assert_eq!(exec.pool().eval_cached(t, &env, &mut cache), 1);
            }
        }
    }

    #[test]
    fn diff_lists_only_changed_locations() {
        let mut pool = pokemu_solver::TermPool::new();
        let _a = pool.var(8, "a");
        let _b = pool.var(8, "b");
        let model = Model::from_pairs([(VarId(0), 5u64), (VarId(1), 7u64)]);
        let mut baseline = HashMap::new();
        baseline.insert(VarId(0), 5u64);
        let d = diff_from_baseline(&pool, &model, &baseline);
        assert_eq!(d, vec![(VarId(1), 7)]);
    }
}
