//! Path summaries for common computations (paper §3.3.2).
//!
//! Some sub-computations — the motivating example is Bochs's segment
//! descriptor cache update, with 23 paths per segment — appear in many
//! instructions and would multiply the path count (23^6 ≈ 1.48·10^8 for six
//! segments). Instead, the engine pre-explores the computation once and folds
//! its `(path condition, outputs)` pairs into nested if-then-else terms:
//! `p1 ? v1 : (p2 ? v2 : ...)`. At use sites, the summary is instantiated by
//! substituting the actual arguments for the formal input variables, adding a
//! single (large) constraint instead of many branches.

use std::collections::HashMap;

use pokemu_solver::{TermId, TermPool, VarId};

use crate::engine::PathOutcome;

/// A folded multi-path computation: formal inputs plus one ITE-tree per
/// output.
#[derive(Debug, Clone)]
pub struct Summary {
    formals: Vec<VarId>,
    outputs: Vec<TermId>,
    cases: usize,
}

impl Summary {
    /// Folds exploration results into a summary.
    ///
    /// Every path must produce the same number of outputs. The last path
    /// serves as the default arm, which is sound because exhaustive
    /// exploration guarantees the path conditions cover the input space.
    ///
    /// # Panics
    ///
    /// Panics if `paths` is empty or output arities differ.
    pub fn fold(
        pool: &mut TermPool,
        formals: Vec<VarId>,
        paths: &[PathOutcome<Vec<TermId>>],
    ) -> Self {
        assert!(!paths.is_empty(), "cannot summarize zero paths");
        let arity = paths[0].value.len();
        for p in paths {
            assert_eq!(p.value.len(), arity, "inconsistent summary output arity");
        }
        let mut outputs = Vec::with_capacity(arity);
        for out_idx in 0..arity {
            // Default arm: the last path's value.
            let mut acc = paths[paths.len() - 1].value[out_idx];
            for p in paths[..paths.len() - 1].iter().rev() {
                let cond = conjoin(pool, &p.path_condition);
                acc = pool.ite(cond, p.value[out_idx], acc);
            }
            outputs.push(acc);
        }
        Summary {
            formals,
            outputs,
            cases: paths.len(),
        }
    }

    /// Number of folded cases (execution paths of the summarized code).
    pub fn cases(&self) -> usize {
        self.cases
    }

    /// Number of outputs per invocation.
    pub fn arity(&self) -> usize {
        self.outputs.len()
    }

    /// Instantiates the summary with actual arguments, returning one term per
    /// output.
    ///
    /// # Panics
    ///
    /// Panics if `args` does not match the formal parameter count or widths.
    pub fn apply(&self, pool: &mut TermPool, args: &[TermId]) -> Vec<TermId> {
        assert_eq!(
            args.len(),
            self.formals.len(),
            "summary argument count mismatch"
        );
        let map: HashMap<VarId, TermId> = self
            .formals
            .iter()
            .copied()
            .zip(args.iter().copied())
            .collect();
        self.outputs
            .iter()
            .map(|&o| pool.substitute(o, &map))
            .collect()
    }
}

/// Conjunction of a list of width-1 terms (true when empty).
pub fn conjoin(pool: &mut TermPool, conds: &[TermId]) -> TermId {
    let mut acc = pool.true_();
    for &c in conds {
        acc = pool.and(acc, c);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Dom;
    use crate::engine::Executor;

    /// A small multi-path function: saturating increment with a quirk.
    fn quirky_inc<D: Dom>(d: &mut D, x: D::V) -> D::V {
        let max = d.constant(8, 0xff);
        let is_max = d.eq(x, max);
        if d.branch(is_max, "saturate") {
            max
        } else {
            let ten = d.constant(8, 10);
            let small = d.ult(x, ten);
            if d.branch(small, "small") {
                let two = d.constant(8, 2);
                d.add(x, two)
            } else {
                let one = d.constant(8, 1);
                d.add(x, one)
            }
        }
    }

    #[test]
    fn summary_agrees_with_direct_execution() {
        let mut exec = Executor::new();
        let summary = exec.summarize(&[(8, "x")], |e, formals| vec![quirky_inc(e, formals[0])]);
        assert_eq!(summary.cases(), 3);
        assert_eq!(summary.arity(), 1);

        // Check the folded formula against the concrete function on all inputs.
        for x in 0..=255u64 {
            let arg = exec.pool_mut().constant(8, x);
            let out = summary.apply(exec.pool_mut(), &[arg]);
            let got = exec
                .pool()
                .as_const(out[0])
                .expect("constant input must fold to a constant output");
            let mut conc = crate::dom::Concrete::new();
            let cx = conc.constant(8, x);
            let result = quirky_inc(&mut conc, cx);
            let expect = conc.as_const(result).unwrap();
            assert_eq!(got, expect, "summary({x})");
        }
    }

    #[test]
    fn summary_replaces_branching_at_use_sites() {
        let mut exec = Executor::new();
        let summary = exec.summarize(&[(8, "x")], |e, formals| vec![quirky_inc(e, formals[0])]);
        exec.register_summary("quirky_inc", summary);

        // With the summary, the caller's exploration has a single path even
        // though the summarized code has three.
        let r = exec.explore(|e| {
            let x = e.fresh_input(8, "input");
            let out = e
                .summary_hook("quirky_inc", &[x])
                .expect("summary registered")
                .remove(0);
            out
        });
        assert!(r.complete);
        assert_eq!(r.paths.len(), 1, "summarized call must not fork");
    }

    #[test]
    fn conjoin_of_empty_is_true() {
        let mut pool = TermPool::new();
        let t = conjoin(&mut pool, &[]);
        assert_eq!(pool.as_const(t), Some(1));
    }
}
