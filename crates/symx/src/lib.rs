//! # pokemu-symx
//!
//! An online symbolic execution engine in the mold of **FuzzBALL** (paper
//! §3.1), the engine behind PokeEMU in *"Path-Exploration Lifting: Hi-Fi
//! Tests for Lo-Fi Emulators"* (ASPLOS 2012).
//!
//! The engine executes a program — any Rust code written against the
//! [`Dom`] value-domain trait — with symbolic inputs, one path per run:
//!
//! * symbolic branches consult the decision procedure and a
//!   [`tree::DecisionTree`] so each run takes a fresh feasible path
//!   (§3.1.2, "Online Decision Making" / "Decision Tree");
//! * word-sized values can be [`Dom::concretize`]d bit-by-bit, enumerating
//!   all feasible values, or [`Dom::pick`]ed once for large-table indexes
//!   (§3.1.2 / §3.3.2);
//! * common multi-path computations are folded into [`Summary`] terms
//!   (§3.3.2) and substituted at use sites;
//! * solver models are reduced toward a baseline state by greedy
//!   [`minimize::minimize`] (§3.4).
//!
//! The same program instantiated at [`Concrete`] runs as a plain interpreter,
//! which is how the Hi-Fi emulator doubles as both an exploration subject and
//! an execution target.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dom;
pub mod engine;
pub mod minimize;
pub mod summary;
pub mod tree;

pub use dom::{CVal, Concrete, Dom};
pub use engine::{
    Executor, Exploration, ExploreConfig, ExploreStats, PathOutcome, PATH_COVERAGE_BITS,
};
pub use minimize::{diff_from_baseline, minimize, MinimizeStats};
pub use summary::{conjoin, Summary};
