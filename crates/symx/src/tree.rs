//! The decision tree that steers path exploration (paper §3.1.2).
//!
//! Each node represents the occurrence of a symbolic branch on a particular
//! execution path; its two out-edges are the "false" and "true" directions.
//! Per direction the tree caches whether the direction has been *checked for
//! feasibility* (saving decision-procedure calls on replayed prefixes) and
//! whether the subtree below has been *fully explored*, so the engine never
//! re-runs a completed path and knows when exploration has converged.

/// Index of a node in the tree arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The root node id.
    pub const ROOT: NodeId = NodeId(0);
}

/// Cached feasibility of one branch direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feasibility {
    /// Not yet asked the decision procedure.
    Unknown,
    /// Satisfiable together with the path prefix.
    Feasible,
    /// Unsatisfiable together with the path prefix.
    Infeasible,
}

#[derive(Debug, Clone)]
struct Node {
    parent: Option<(NodeId, bool)>,
    children: [Option<NodeId>; 2],
    feasible: [Feasibility; 2],
    /// Direction subtree fully explored (or proven infeasible).
    done: [bool; 2],
    /// Set when a path *terminates* at this node (it is a leaf position).
    terminal: bool,
}

impl Node {
    fn new(parent: Option<(NodeId, bool)>) -> Self {
        Node {
            parent,
            children: [None, None],
            feasible: [Feasibility::Unknown, Feasibility::Unknown],
            done: [false, false],
            terminal: false,
        }
    }
}

/// Arena-allocated binary decision tree.
#[derive(Debug)]
pub struct DecisionTree {
    nodes: Vec<Node>,
}

impl Default for DecisionTree {
    fn default() -> Self {
        Self::new()
    }
}

impl DecisionTree {
    /// Creates a tree containing only the root.
    pub fn new() -> Self {
        DecisionTree {
            nodes: vec![Node::new(None)],
        }
    }

    /// Number of nodes allocated (a measure of explored branch sites).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Cached feasibility for `dir` at `n`.
    pub fn feasibility(&self, n: NodeId, dir: bool) -> Feasibility {
        self.nodes[n.0 as usize].feasible[dir as usize]
    }

    /// Records a feasibility verdict for `dir` at `n`.
    ///
    /// An infeasible direction is immediately marked done.
    pub fn set_feasibility(&mut self, n: NodeId, dir: bool, f: Feasibility) {
        self.nodes[n.0 as usize].feasible[dir as usize] = f;
        if f == Feasibility::Infeasible {
            self.nodes[n.0 as usize].done[dir as usize] = true;
            self.propagate_done(n);
        }
    }

    /// Whether direction `dir` below `n` has been exhausted.
    pub fn dir_done(&self, n: NodeId, dir: bool) -> bool {
        self.nodes[n.0 as usize].done[dir as usize]
    }

    /// Whether the entire subtree rooted at `n` is exhausted.
    pub fn node_done(&self, n: NodeId) -> bool {
        let node = &self.nodes[n.0 as usize];
        if node.terminal {
            return true;
        }
        node.done[0] && node.done[1]
    }

    /// Whether all exploration is complete.
    pub fn fully_explored(&self) -> bool {
        self.node_done(NodeId::ROOT)
    }

    /// The child of `n` in direction `dir`, creating it if absent.
    pub fn child(&mut self, n: NodeId, dir: bool) -> NodeId {
        if let Some(c) = self.nodes[n.0 as usize].children[dir as usize] {
            return c;
        }
        let c = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new(Some((n, dir))));
        self.nodes[n.0 as usize].children[dir as usize] = Some(c);
        c
    }

    /// The existing child of `n` in direction `dir`, if any.
    pub fn child_opt(&self, n: NodeId, dir: bool) -> Option<NodeId> {
        self.nodes[n.0 as usize].children[dir as usize]
    }

    /// Marks the current path as terminating at `n` and propagates
    /// exhaustion toward the root ("propagates the bit indicating that a
    /// subtree has been fully explored back up the tree", §3.1.2).
    pub fn finish_at(&mut self, n: NodeId) {
        self.nodes[n.0 as usize].terminal = true;
        self.nodes[n.0 as usize].done = [true, true];
        self.propagate_done(n);
    }

    /// Forcibly marks `dir` at `n` exhausted (used for truncated paths so
    /// exploration still terminates; the run is then flagged incomplete).
    pub fn force_done(&mut self, n: NodeId, dir: bool) {
        self.nodes[n.0 as usize].done[dir as usize] = true;
        self.propagate_done(n);
    }

    fn propagate_done(&mut self, mut n: NodeId) {
        loop {
            let node = &self.nodes[n.0 as usize];
            let all = node.terminal || (node.done[0] && node.done[1]);
            if !all {
                return;
            }
            match node.parent {
                None => return,
                Some((p, dir)) => {
                    let pd = &mut self.nodes[p.0 as usize].done[dir as usize];
                    if *pd {
                        return; // already propagated
                    }
                    *pd = true;
                    n = p;
                }
            }
        }
    }

    /// Directions at `n` worth exploring: feasible-or-unknown and not done.
    pub fn candidate_dirs(&self, n: NodeId) -> Vec<bool> {
        [false, true]
            .into_iter()
            .filter(|&d| !self.dir_done(n, d) && self.feasibility(n, d) != Feasibility::Infeasible)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustion_propagates_to_root() {
        let mut t = DecisionTree::new();
        // Root branch: both sides feasible, each side one leaf.
        t.set_feasibility(NodeId::ROOT, false, Feasibility::Feasible);
        t.set_feasibility(NodeId::ROOT, true, Feasibility::Feasible);
        let l = t.child(NodeId::ROOT, false);
        t.finish_at(l);
        assert!(!t.fully_explored());
        assert!(t.dir_done(NodeId::ROOT, false));
        let r = t.child(NodeId::ROOT, true);
        t.finish_at(r);
        assert!(t.fully_explored());
    }

    #[test]
    fn infeasible_direction_counts_as_done() {
        let mut t = DecisionTree::new();
        t.set_feasibility(NodeId::ROOT, true, Feasibility::Infeasible);
        assert!(t.dir_done(NodeId::ROOT, true));
        assert_eq!(t.candidate_dirs(NodeId::ROOT), vec![false]);
        let l = t.child(NodeId::ROOT, false);
        t.set_feasibility(NodeId::ROOT, false, Feasibility::Feasible);
        t.finish_at(l);
        assert!(t.fully_explored());
    }

    #[test]
    fn child_is_stable() {
        let mut t = DecisionTree::new();
        let a = t.child(NodeId::ROOT, true);
        let b = t.child(NodeId::ROOT, true);
        assert_eq!(a, b);
        assert_eq!(t.child_opt(NodeId::ROOT, false), None);
    }
}
