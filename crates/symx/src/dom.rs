//! The value domain abstraction.
//!
//! The paper's FuzzBALL symbolically executes the Hi-Fi emulator's *binary*.
//! Rust has no mature binary-lifting ecosystem, so PokeEMU-rs substitutes a
//! typed seam with the same effect: the emulator is written once, generically
//! over a [`Dom`] — the set of operations on machine words. Instantiating the
//! emulator at [`Concrete`] runs it as an ordinary interpreter; instantiating
//! it at [`crate::Executor`] runs it under online symbolic execution, where
//! every data-dependent branch consults the decision tree and the decision
//! procedure, exactly as FuzzBALL does at the instruction level (§3.1).
//!
//! All values carry an explicit bit width (1..=64). Comparison operations
//! yield width-1 values; [`Dom::branch`] turns a width-1 value into control
//! flow.

use pokemu_solver::Width;

/// Operations on machine words, implemented by concrete and symbolic domains.
///
/// The emulator and decoder are written against this trait. Width rules match
/// SMT-LIB `QF_BV`: binary operators require equal widths, comparisons return
/// width-1 values, and shifts treat out-of-range amounts as producing the
/// fill pattern.
pub trait Dom {
    /// A machine word of known width (concrete or symbolic).
    type V: Copy + std::fmt::Debug;

    /// Creates the constant `v` masked to width `w`.
    fn constant(&mut self, w: Width, v: u64) -> Self::V;
    /// The width of `v` in bits.
    fn width(&self, v: Self::V) -> Width;
    /// If `v` is statically known, its value.
    fn as_const(&self, v: Self::V) -> Option<u64>;

    /// Modular addition.
    fn add(&mut self, a: Self::V, b: Self::V) -> Self::V;
    /// Modular subtraction.
    fn sub(&mut self, a: Self::V, b: Self::V) -> Self::V;
    /// Modular multiplication.
    fn mul(&mut self, a: Self::V, b: Self::V) -> Self::V;
    /// Unsigned division (`bvudiv` conventions).
    fn udiv(&mut self, a: Self::V, b: Self::V) -> Self::V;
    /// Unsigned remainder (`bvurem` conventions).
    fn urem(&mut self, a: Self::V, b: Self::V) -> Self::V;
    /// Bitwise and.
    fn and(&mut self, a: Self::V, b: Self::V) -> Self::V;
    /// Bitwise or.
    fn or(&mut self, a: Self::V, b: Self::V) -> Self::V;
    /// Bitwise xor.
    fn xor(&mut self, a: Self::V, b: Self::V) -> Self::V;
    /// Bitwise complement.
    fn not(&mut self, a: Self::V) -> Self::V;
    /// Two's-complement negation.
    fn neg(&mut self, a: Self::V) -> Self::V;
    /// Logical shift left.
    fn shl(&mut self, a: Self::V, b: Self::V) -> Self::V;
    /// Logical shift right.
    fn lshr(&mut self, a: Self::V, b: Self::V) -> Self::V;
    /// Arithmetic shift right.
    fn ashr(&mut self, a: Self::V, b: Self::V) -> Self::V;

    /// Equality (width-1 result).
    fn eq(&mut self, a: Self::V, b: Self::V) -> Self::V;
    /// Unsigned less-than (width-1 result).
    fn ult(&mut self, a: Self::V, b: Self::V) -> Self::V;
    /// Signed less-than (width-1 result).
    fn slt(&mut self, a: Self::V, b: Self::V) -> Self::V;

    /// If-then-else on a width-1 condition.
    fn ite(&mut self, c: Self::V, t: Self::V, e: Self::V) -> Self::V;
    /// Bit-slice `[hi:lo]`.
    fn extract(&mut self, a: Self::V, hi: u8, lo: u8) -> Self::V;
    /// Concatenation (first operand high).
    fn concat(&mut self, hi: Self::V, lo: Self::V) -> Self::V;
    /// Zero extension to `w`.
    fn zext(&mut self, a: Self::V, w: Width) -> Self::V;
    /// Sign extension to `w`.
    fn sext(&mut self, a: Self::V, w: Width) -> Self::V;

    /// Resolves a width-1 condition into control flow.
    ///
    /// Concretely this tests `v != 0`; symbolically it consults the decision
    /// tree and decision procedure, records the branch on the current path,
    /// and may pick either feasible direction (paper §3.1.2, "Online Decision
    /// Making").
    fn branch(&mut self, cond: Self::V, site: &'static str) -> bool;

    /// Obtains a concrete value for `v`, *exploring all feasible values*
    /// across paths via per-bit MSB-first branching (paper §3.1.2,
    /// "Extension to Word-sized Values"). Use for small domains such as
    /// switch scrutinees.
    fn concretize(&mut self, v: Self::V, site: &'static str) -> u64;

    /// Obtains a single feasible concrete value for `v` *without* exploring
    /// alternatives, constraining the path to it (paper §3.3.2, "Indexing
    /// Memory and Tables"). Use for large-domain indexes such as memory
    /// addresses, where "all 2^32 locations are equivalent".
    fn pick(&mut self, v: Self::V, site: &'static str) -> u64;

    /// Adds a side constraint to the current path without creating a
    /// decision-tree node. Used e.g. to fix the concrete bits of a partially
    /// symbolic byte (paper §3.3.1).
    fn assume(&mut self, cond: Self::V);

    /// Creates (or retrieves) a named input of width `w`.
    ///
    /// Symbolically this is a stable symbolic variable — the mechanism behind
    /// marking machine state symbolic (§3.3.1) and on-demand symbolic memory
    /// (§3.3.2). Concretely it reads as zero: the concrete emulator never
    /// invents inputs, and zero matches the baseline image's uninitialized
    /// memory.
    fn fresh_input(&mut self, w: Width, name: &str) -> Self::V;

    /// Replaces a summarized computation (§3.3.2) when a summary is
    /// registered under `key`. Returns `None` to run the real code; the
    /// concrete domain always does.
    fn summary_hook(&mut self, key: &'static str, args: &[Self::V]) -> Option<Vec<Self::V>> {
        let _ = (key, args);
        None
    }

    // ---- Conveniences with default implementations ----

    /// Disequality (width-1 result).
    fn ne(&mut self, a: Self::V, b: Self::V) -> Self::V {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Unsigned less-or-equal.
    fn ule(&mut self, a: Self::V, b: Self::V) -> Self::V {
        let lt = self.ult(b, a);
        self.not(lt)
    }

    /// Signed less-or-equal.
    fn sle(&mut self, a: Self::V, b: Self::V) -> Self::V {
        let lt = self.slt(b, a);
        self.not(lt)
    }

    /// Width-1 "true".
    fn tt(&mut self) -> Self::V {
        self.constant(1, 1)
    }

    /// Width-1 "false".
    fn ff(&mut self) -> Self::V {
        self.constant(1, 0)
    }

    /// `v != 0` as a width-1 value.
    fn nonzero(&mut self, v: Self::V) -> Self::V {
        let w = self.width(v);
        let zero = self.constant(w, 0);
        self.ne(v, zero)
    }

    /// Tests a single bit of `v`, returning a width-1 value.
    fn bit(&mut self, v: Self::V, i: u8) -> Self::V {
        self.extract(v, i, i)
    }

    /// Branches on `v != 0`.
    fn branch_nonzero(&mut self, v: Self::V, site: &'static str) -> bool {
        let c = self.nonzero(v);
        self.branch(c, site)
    }
}

/// The concrete value domain: plain machine arithmetic.
///
/// # Examples
///
/// ```
/// use pokemu_symx::{Concrete, Dom};
///
/// let mut d = Concrete::new();
/// let a = d.constant(8, 250);
/// let b = d.constant(8, 10);
/// let s = d.add(a, b);
/// assert_eq!(d.as_const(s), Some(4)); // wraps at 8 bits
/// ```
#[derive(Debug, Default, Clone)]
pub struct Concrete {
    _priv: (),
}

/// A concrete machine word: a value plus its width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CVal {
    /// The value, always masked to `w` bits.
    pub v: u64,
    /// The width in bits.
    pub w: Width,
}

impl Concrete {
    /// Creates the concrete domain.
    pub fn new() -> Self {
        Self::default()
    }
}

use pokemu_solver::{mask, sext64};

impl Dom for Concrete {
    type V = CVal;

    fn constant(&mut self, w: Width, v: u64) -> CVal {
        CVal { v: mask(w, v), w }
    }

    fn width(&self, v: CVal) -> Width {
        v.w
    }

    fn as_const(&self, v: CVal) -> Option<u64> {
        Some(v.v)
    }

    fn add(&mut self, a: CVal, b: CVal) -> CVal {
        debug_assert_eq!(a.w, b.w);
        CVal {
            v: mask(a.w, a.v.wrapping_add(b.v)),
            w: a.w,
        }
    }

    fn sub(&mut self, a: CVal, b: CVal) -> CVal {
        debug_assert_eq!(a.w, b.w);
        CVal {
            v: mask(a.w, a.v.wrapping_sub(b.v)),
            w: a.w,
        }
    }

    fn mul(&mut self, a: CVal, b: CVal) -> CVal {
        debug_assert_eq!(a.w, b.w);
        CVal {
            v: mask(a.w, a.v.wrapping_mul(b.v)),
            w: a.w,
        }
    }

    fn udiv(&mut self, a: CVal, b: CVal) -> CVal {
        let v = if b.v == 0 {
            mask(a.w, u64::MAX)
        } else {
            a.v / b.v
        };
        CVal { v, w: a.w }
    }

    fn urem(&mut self, a: CVal, b: CVal) -> CVal {
        let v = if b.v == 0 { a.v } else { a.v % b.v };
        CVal { v, w: a.w }
    }

    fn and(&mut self, a: CVal, b: CVal) -> CVal {
        CVal {
            v: a.v & b.v,
            w: a.w,
        }
    }

    fn or(&mut self, a: CVal, b: CVal) -> CVal {
        CVal {
            v: a.v | b.v,
            w: a.w,
        }
    }

    fn xor(&mut self, a: CVal, b: CVal) -> CVal {
        CVal {
            v: a.v ^ b.v,
            w: a.w,
        }
    }

    fn not(&mut self, a: CVal) -> CVal {
        CVal {
            v: mask(a.w, !a.v),
            w: a.w,
        }
    }

    fn neg(&mut self, a: CVal) -> CVal {
        CVal {
            v: mask(a.w, a.v.wrapping_neg()),
            w: a.w,
        }
    }

    fn shl(&mut self, a: CVal, b: CVal) -> CVal {
        let v = if b.v >= a.w as u64 {
            0
        } else {
            mask(a.w, a.v << b.v)
        };
        CVal { v, w: a.w }
    }

    fn lshr(&mut self, a: CVal, b: CVal) -> CVal {
        let v = if b.v >= a.w as u64 { 0 } else { a.v >> b.v };
        CVal { v, w: a.w }
    }

    fn ashr(&mut self, a: CVal, b: CVal) -> CVal {
        let sx = sext64(a.w, a.v);
        let v = if b.v >= a.w as u64 {
            mask(a.w, (sx >> 63) as u64)
        } else {
            mask(a.w, (sx >> b.v) as u64)
        };
        CVal { v, w: a.w }
    }

    fn eq(&mut self, a: CVal, b: CVal) -> CVal {
        CVal {
            v: (a.v == b.v) as u64,
            w: 1,
        }
    }

    fn ult(&mut self, a: CVal, b: CVal) -> CVal {
        CVal {
            v: (a.v < b.v) as u64,
            w: 1,
        }
    }

    fn slt(&mut self, a: CVal, b: CVal) -> CVal {
        CVal {
            v: (sext64(a.w, a.v) < sext64(b.w, b.v)) as u64,
            w: 1,
        }
    }

    fn ite(&mut self, c: CVal, t: CVal, e: CVal) -> CVal {
        if c.v != 0 {
            t
        } else {
            e
        }
    }

    fn extract(&mut self, a: CVal, hi: u8, lo: u8) -> CVal {
        let w = hi - lo + 1;
        CVal {
            v: mask(w, a.v >> lo),
            w,
        }
    }

    fn concat(&mut self, hi: CVal, lo: CVal) -> CVal {
        let w = hi.w + lo.w;
        CVal {
            v: (hi.v << lo.w) | lo.v,
            w,
        }
    }

    fn zext(&mut self, a: CVal, w: Width) -> CVal {
        debug_assert!(w >= a.w);
        CVal { v: a.v, w }
    }

    fn sext(&mut self, a: CVal, w: Width) -> CVal {
        debug_assert!(w >= a.w);
        CVal {
            v: mask(w, sext64(a.w, a.v) as u64),
            w,
        }
    }

    fn branch(&mut self, cond: CVal, _site: &'static str) -> bool {
        cond.v != 0
    }

    fn concretize(&mut self, v: CVal, _site: &'static str) -> u64 {
        v.v
    }

    fn pick(&mut self, v: CVal, _site: &'static str) -> u64 {
        v.v
    }

    fn assume(&mut self, cond: CVal) {
        debug_assert_ne!(cond.v, 0, "concrete assume violated");
    }

    fn fresh_input(&mut self, w: Width, _name: &str) -> CVal {
        CVal { v: 0, w }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_ops_behave_like_hardware() {
        let mut d = Concrete::new();
        let a = d.constant(32, 0x8000_0000);
        let one = d.constant(32, 1);
        let shr = d.ashr(a, one);
        assert_eq!(d.as_const(shr), Some(0xC000_0000));
        let lt = d.slt(a, one);
        assert_eq!(d.as_const(lt), Some(1)); // negative < 1
        let ult = d.ult(a, one);
        assert_eq!(d.as_const(ult), Some(0));
    }

    #[test]
    fn default_helpers() {
        let mut d = Concrete::new();
        let x = d.constant(16, 0xab00);
        let b = d.bit(x, 15);
        assert_eq!(d.as_const(b), Some(1));
        let nz = d.nonzero(x);
        assert_eq!(d.as_const(nz), Some(1));
        let y = d.constant(16, 0xab01);
        let ne = d.ne(x, y);
        assert_eq!(d.as_const(ne), Some(1));
    }
}
