//! The online symbolic execution engine (paper §3.1).
//!
//! [`Executor`] is FuzzBALL's counterpart: it executes a program (any Rust
//! closure written against [`Dom`]) with symbolic values, one path at a time.
//! When a branch condition is symbolic it asks the decision procedure which
//! directions are feasible, consults the [`DecisionTree`] so that every run
//! executes a path not explored before, and records the branch in the path
//! condition. When a path ends, exhaustion information propagates up the tree;
//! exploration loops until the tree is fully explored or a path cap is hit
//! (the paper caps at 8192 paths per instruction, §6.1).
//!
//! Trade-off faithfully reproduced from the paper: rather than forking and
//! keeping many states in memory (as KLEE does), the engine re-executes from
//! the start for every path, which keeps memory flat and the implementation
//! simple (§3.1.2, "Decision Tree").

use std::collections::HashMap;
use std::time::Instant;

use pokemu_rt::{coverage, metrics, Rng};
use pokemu_solver::{origin, BvSolver, Model, SatResult, TermId, TermPool, VarId, Width};

use crate::dom::Dom;
use crate::summary::Summary;
use crate::tree::{DecisionTree, Feasibility, NodeId};

/// Tuning knobs for exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Maximum number of recorded paths ("limit on the maximum number of
    /// paths (currently 8192)", §6.1).
    pub max_paths: usize,
    /// Per-path symbolic branch budget; exceeding it truncates the path and
    /// flags the exploration incomplete.
    pub max_branches_per_path: usize,
    /// Seed for the random direction choice at fresh branch sites.
    pub seed: u64,
    /// Wall-clock deadline for the whole exploration; when it passes, the
    /// run stops starting new paths, keeps everything gathered so far, and
    /// reports `complete = false` (graceful degradation, never a panic).
    pub deadline: Option<std::time::Instant>,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_paths: 8192,
            max_branches_per_path: 4096,
            seed: 0x9e3779b97f4a7c15,
            deadline: None,
        }
    }
}

/// Counters describing one exploration run.
#[derive(Debug, Default, Clone, Copy)]
pub struct ExploreStats {
    /// Paths recorded with a satisfying model.
    pub paths: usize,
    /// Replays abandoned without a result (nondeterminism guards).
    pub dead_paths: usize,
    /// Paths cut by the per-path branch budget.
    pub truncated_paths: usize,
    /// Paths whose condition turned out unsatisfiable at the end of a
    /// replay (previously a hard panic; now counted and skipped).
    pub infeasible_paths: usize,
    /// Explorations cut short by [`ExploreConfig::deadline`].
    pub deadline_trips: usize,
    /// Total symbolic branches taken.
    pub branches: u64,
    /// Decision-procedure queries issued (including model extraction).
    pub solver_queries: u64,
    /// Solver queries abandoned as Unknown (budget or fault); every one
    /// marks the exploration incomplete because a feasible branch may have
    /// been pruned.
    pub unknown: u64,
}

/// One fully explored execution path.
#[derive(Debug, Clone)]
pub struct PathOutcome<T> {
    /// Whatever the explored program returned on this path.
    pub value: T,
    /// The conjunction of branch conditions and assumptions taken.
    pub path_condition: Vec<TermId>,
    /// A satisfying assignment for the path condition.
    pub model: Model,
    /// FNV-1a hash of the path's branch decisions (each branch site's name
    /// plus the direction taken). Deterministic for a given program and
    /// engine seed, independent of worker scheduling, so it names the path
    /// in coverage maps, run manifests, and deviation reports.
    pub path_id: u64,
}

/// The result of exploring a program.
#[derive(Debug)]
pub struct Exploration<T> {
    /// One outcome per explored path.
    pub paths: Vec<PathOutcome<T>>,
    /// `true` when every feasible path was explored (the "complete path
    /// coverage" criterion of §6.1).
    pub complete: bool,
    /// Statistics for this exploration.
    pub stats: ExploreStats,
}

/// The online symbolic execution engine; also the symbolic [`Dom`].
///
/// # Examples
///
/// Exploring the paper's `if (x - 15 == 0)` example discovers both paths and
/// produces a model for each:
///
/// ```
/// use pokemu_symx::{Dom, Executor};
///
/// let mut exec = Executor::new();
/// let result = exec.explore(|e| {
///     let x = e.fresh_input(32, "x");
///     let k = e.constant(32, 15);
///     let d = e.sub(x, k);
///     let z = e.constant(32, 0);
///     let c = e.eq(d, z);
///     if e.branch(c, "x==15") { "taken" } else { "fallthrough" }
/// });
/// assert!(result.complete);
/// assert_eq!(result.paths.len(), 2);
/// ```
#[derive(Debug)]
pub struct Executor {
    pool: TermPool,
    solver: BvSolver,
    tree: DecisionTree,
    rng: Rng,
    config: ExploreConfig,
    stats: ExploreStats,
    /// Stable name -> variable mapping so "the same" machine-state location
    /// maps to the same symbolic variable on every path (§3.3.1).
    named_vars: HashMap<String, TermId>,
    /// Registered path summaries keyed by call-site name (§3.3.2).
    summaries: HashMap<&'static str, Summary>,
    /// Cache of `pick` results keyed by (tree position, term) so replays of
    /// the same path prefix concretize identically even as the solver's
    /// learned clauses change its models.
    pick_cache: HashMap<(NodeId, TermId), u64>,
    // ---- per-path state ----
    cur: NodeId,
    path: Vec<TermId>,
    path_hash: u64,
    branches_this_path: usize,
    dead: bool,
    exploring: bool,
    /// `true` while a [`Executor::try_summarize`] sub-exploration runs, so
    /// solver queries issued on its behalf bill to the `summary` origin
    /// rather than to feasibility/model — exactly the attribution needed to
    /// diagnose the e7 inversion (summaries slower than no summaries).
    in_summary: bool,
    metrics: EngineMetrics,
}

/// Accumulates wall time into a timer on drop; inert (no clock reads) when
/// neither profiling nor tracing wants latency attribution.
struct TimeGuard {
    start: Option<Instant>,
    timer: metrics::Timer,
}

impl Drop for TimeGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.timer.add(start.elapsed());
        }
    }
}

fn timed(timer: metrics::Timer) -> TimeGuard {
    TimeGuard {
        start: pokemu_rt::prof::timing_enabled().then(Instant::now),
        timer,
    }
}

/// Registry handles for the engine's counters (`symx.` namespace), resolved
/// once per engine so hot sites pay one relaxed atomic add.
#[derive(Debug, Clone, Copy)]
struct EngineMetrics {
    paths: metrics::Counter,
    dead_paths: metrics::Counter,
    forks: metrics::Counter,
    pruned_branches: metrics::Counter,
    summary_hits: metrics::Counter,
    pick_cache_hits: metrics::Counter,
    unknown_branches: metrics::Counter,
    infeasible_paths: metrics::Counter,
    deadline_trips: metrics::Counter,
    /// Wall time in [`Dom::branch`] (fork bookkeeping + feasibility
    /// resolution); fed only when timing is on.
    fork_ns: metrics::Timer,
    /// Wall time resolving branch feasibility (the prune decision),
    /// a subset of `fork_ns`.
    prune_ns: metrics::Timer,
    /// Wall time constructing and applying path summaries.
    summary_ns: metrics::Timer,
    /// Wall time extracting path-end models.
    model_ns: metrics::Timer,
    /// Path-id coverage bitmap (`coverage.path`): one bit per explored
    /// path-decision hash, modulo the map size.
    path_cov: coverage::CoverageMap,
}

/// Size of the `coverage.path` bitmap; path-id hashes index it modulo this.
pub const PATH_COVERAGE_BITS: usize = 65_536;

impl EngineMetrics {
    fn new() -> Self {
        EngineMetrics {
            paths: metrics::counter("symx.paths"),
            dead_paths: metrics::counter("symx.dead_paths"),
            forks: metrics::counter("symx.forks"),
            pruned_branches: metrics::counter("symx.pruned_branches"),
            summary_hits: metrics::counter("symx.summary_hits"),
            pick_cache_hits: metrics::counter("symx.pick_cache_hits"),
            unknown_branches: metrics::counter("symx.unknown_branches"),
            infeasible_paths: metrics::counter("symx.infeasible_paths"),
            deadline_trips: metrics::counter("symx.deadline_trips"),
            fork_ns: metrics::timer("symx.ns.fork"),
            prune_ns: metrics::timer("symx.ns.prune"),
            summary_ns: metrics::timer("symx.ns.summary"),
            model_ns: metrics::timer("symx.ns.model"),
            path_cov: coverage::map("coverage.path", PATH_COVERAGE_BITS),
        }
    }
}

/// FNV-1a offset basis (the per-path hash starts here).
const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor {
    /// Creates an engine with default configuration.
    pub fn new() -> Self {
        Self::with_config(ExploreConfig::default())
    }

    /// Creates an engine with explicit limits.
    pub fn with_config(config: ExploreConfig) -> Self {
        Executor {
            pool: TermPool::new(),
            solver: BvSolver::new(),
            tree: DecisionTree::new(),
            rng: Rng::seed_from_u64(config.seed),
            config,
            stats: ExploreStats::default(),
            named_vars: HashMap::new(),
            summaries: HashMap::new(),
            pick_cache: HashMap::new(),
            cur: NodeId::ROOT,
            path: Vec::new(),
            path_hash: FNV_OFFSET,
            branches_this_path: 0,
            dead: false,
            exploring: false,
            in_summary: false,
            metrics: EngineMetrics::new(),
        }
    }

    /// The term pool (terms in [`PathOutcome`]s refer to it).
    pub fn pool(&self) -> &TermPool {
        &self.pool
    }

    /// Mutable access to the term pool.
    pub fn pool_mut(&mut self) -> &mut TermPool {
        &mut self.pool
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> ExploreStats {
        let mut s = self.stats;
        let solver = self.solver.stats();
        s.solver_queries = solver.queries;
        s.unknown = solver.unknown;
        s
    }

    /// Mutable access to the underlying solver (budget configuration).
    pub fn solver_mut(&mut self) -> &mut BvSolver {
        &mut self.solver
    }

    /// Registers a pre-computed [`Summary`] under a call-site key; the
    /// generic program retrieves it through [`Dom::summary_hook`].
    pub fn register_summary(&mut self, key: &'static str, summary: Summary) {
        self.summaries.insert(key, summary);
    }

    /// Creates (or retrieves) the stable named input variable `name`.
    ///
    /// The same name yields the same variable across all paths of all
    /// explorations on this engine, which is what lets test states refer to
    /// fixed machine-state locations.
    pub fn named_input(&mut self, w: Width, name: &str) -> TermId {
        if let Some(&t) = self.named_vars.get(name) {
            assert_eq!(self.pool.width(t), w, "named input {name} width changed");
            return t;
        }
        let t = self.pool.var(w, name);
        self.named_vars.insert(name.to_owned(), t);
        t
    }

    /// The variable id behind a named input, if it exists.
    pub fn named_var_id(&self, name: &str) -> Option<VarId> {
        let t = *self.named_vars.get(name)?;
        match self.pool.op(t) {
            pokemu_solver::Op::Var(v) => Some(v),
            _ => None,
        }
    }

    /// All `(name, variable)` pairs created so far, sorted by name.
    pub fn named_vars(&self) -> Vec<(String, VarId)> {
        let mut v: Vec<(String, VarId)> = self
            .named_vars
            .iter()
            .filter_map(|(n, &t)| match self.pool.op(t) {
                pokemu_solver::Op::Var(id) => Some((n.clone(), id)),
                _ => None,
            })
            .collect();
        v.sort();
        v
    }

    fn begin_path(&mut self) {
        self.cur = NodeId::ROOT;
        self.path.clear();
        self.path_hash = FNV_OFFSET;
        self.branches_this_path = 0;
        self.dead = false;
    }

    fn check_feasible(&mut self, extra: TermId) -> bool {
        let _t = timed(self.metrics.prune_ns);
        let _o = origin::scoped(if self.in_summary {
            "summary"
        } else {
            "feasibility"
        });
        origin::set_path_id(self.path_hash);
        let mut assumptions = self.path.clone();
        assumptions.push(extra);
        match self.solver.check(&self.pool, &assumptions) {
            SatResult::Sat => true,
            SatResult::Unsat => false,
            SatResult::Unknown => {
                // Don't know ≠ infeasible, but the safe degradation is the
                // same: prune the branch. The solver's unknown count marks
                // the exploration incomplete so nobody mistakes the pruned
                // tree for exhaustive coverage.
                self.metrics.unknown_branches.inc();
                pokemu_rt::flight::note("symx.unknown_branch", || {
                    format!("pc_len={}", self.path.len())
                });
                false
            }
        }
    }

    /// Explores every feasible path of `f`, re-running it once per path.
    ///
    /// `f` must be deterministic given the engine's branch decisions: all
    /// inputs must come from [`Executor::fresh_input`]/[`Executor::named_input`]
    /// or constants. Nondeterministic programs are detected (the replay
    /// diverges from the decision tree) and aborted with `complete = false`.
    pub fn explore<T>(&mut self, mut f: impl FnMut(&mut Executor) -> T) -> Exploration<T> {
        assert!(
            !self.exploring,
            "explore is not reentrant; use summarize for nested runs"
        );
        self.exploring = true;
        let _f = pokemu_rt::prof::frame("symx.explore");
        self.tree = DecisionTree::new();
        self.pick_cache.clear();
        let mut paths = Vec::new();
        let mut truncated_any = false;
        let mut deadline_tripped = false;
        let unknown_before = self.solver.stats().unknown;
        let mut iterations = 0usize;
        let iteration_cap = self.config.max_paths.saturating_mul(4).saturating_add(128);
        while !self.tree.fully_explored() && paths.len() < self.config.max_paths {
            if self
                .config
                .deadline
                .is_some_and(|d| std::time::Instant::now() >= d)
            {
                // Out of wall time: keep what we have, flag incompleteness.
                deadline_tripped = true;
                self.stats.deadline_trips += 1;
                self.metrics.deadline_trips.inc();
                pokemu_rt::flight::note("symx.deadline", || {
                    format!("paths_so_far={}", paths.len())
                });
                break;
            }
            iterations += 1;
            if iterations > iteration_cap {
                truncated_any = true;
                break;
            }
            self.begin_path();
            let path_span = pokemu_rt::span!("symx.path", iter = iterations);
            let value = f(self);
            drop(path_span);
            if self.dead {
                self.stats.dead_paths += 1;
                self.metrics.dead_paths.inc();
                if self.branches_this_path >= self.config.max_branches_per_path {
                    self.stats.truncated_paths += 1;
                    truncated_any = true;
                }
                continue;
            }
            self.tree.finish_at(self.cur);
            let model_result = {
                let _t = timed(self.metrics.model_ns);
                let _o = origin::scoped(if self.in_summary { "summary" } else { "model" });
                origin::set_path_id(self.path_hash);
                self.solver.check_with_model(&self.pool, &self.path)
            };
            let Some(model) = model_result else {
                // The replayed path condition is unsatisfiable (or the query
                // degraded to Unknown). Historically a hard panic; one bad
                // path summary must not sink the exploration — the node is
                // already finished, so count it and move to the next path.
                self.stats.infeasible_paths += 1;
                self.metrics.infeasible_paths.inc();
                pokemu_rt::flight::note("symx.infeasible_path", || {
                    format!("pc_len={} iter={iterations}", self.path.len())
                });
                truncated_any = true;
                continue;
            };
            self.stats.paths += 1;
            self.metrics.paths.inc();
            let path_id = self.path_hash;
            self.metrics.path_cov.set(path_id as usize);
            paths.push(PathOutcome {
                value,
                path_condition: self.path.clone(),
                model,
                path_id,
            });
        }
        let hit_cap = paths.len() >= self.config.max_paths && !self.tree.fully_explored();
        // Any Unknown verdict during this exploration may have pruned a
        // genuinely feasible branch: the tree looks explored but is not.
        let degraded = self.solver.stats().unknown > unknown_before;
        self.exploring = false;
        Exploration {
            complete: self.tree.fully_explored()
                && !truncated_any
                && !hit_cap
                && !deadline_tripped
                && !degraded,
            paths,
            stats: self.stats(),
        }
    }

    /// Pre-explores a sub-computation and folds its paths into a [`Summary`]
    /// (paper §3.3.2, "Summarizing Common Computations").
    ///
    /// `inputs` declares the formal parameters; `f` receives the fresh input
    /// terms and returns the output values of the computation. The returned
    /// summary can be registered with [`Executor::register_summary`], after
    /// which [`Dom::summary_hook`] replaces execution of the real code.
    pub fn summarize(
        &mut self,
        inputs: &[(Width, &str)],
        f: impl FnMut(&mut Executor, &[TermId]) -> Vec<TermId>,
    ) -> Summary {
        self.try_summarize(inputs, f)
            .expect("summary exploration must be exhaustive")
    }

    /// [`Executor::summarize`] that degrades instead of panicking: returns
    /// `None` when the sub-exploration came back incomplete (solver budget
    /// exhausted, deadline tripped, path cap hit). A partial summary would
    /// silently drop machine behaviours, so no summary is the safe answer —
    /// callers fall back to executing the real code.
    pub fn try_summarize(
        &mut self,
        inputs: &[(Width, &str)],
        mut f: impl FnMut(&mut Executor, &[TermId]) -> Vec<TermId>,
    ) -> Option<Summary> {
        let _pf = pokemu_rt::prof::frame("symx.summarize");
        let _t = timed(self.metrics.summary_ns);
        // Run on a scratch tree so the caller's exploration is untouched,
        // with a generous path budget independent of the caller's cap: the
        // whole point of a summary is to fold a multi-path computation, so
        // it must be explored exhaustively.
        let saved_tree = std::mem::take(&mut self.tree);
        let saved_cur = self.cur;
        let saved_path = std::mem::take(&mut self.path);
        let saved_exploring = self.exploring;
        let saved_config = self.config;
        let saved_in_summary = self.in_summary;
        self.config.max_paths = self.config.max_paths.max(65_536);
        self.exploring = false;
        self.in_summary = true;

        let formals: Vec<TermId> = inputs
            .iter()
            .enumerate()
            .map(|(i, &(w, name))| self.pool.var(w, &format!("summary_{name}_{i}")))
            .collect();
        let formal_ids: Vec<VarId> = formals
            .iter()
            .map(|&t| match self.pool.op(t) {
                pokemu_solver::Op::Var(v) => v,
                _ => unreachable!("freshly created variable"),
            })
            .collect();
        let result = self.explore(|e| f(e, &formals));
        let summary = result
            .complete
            .then(|| Summary::fold(&mut self.pool, formal_ids, &result.paths));
        if summary.is_none() {
            pokemu_rt::flight::note("symx.summary_incomplete", || {
                format!(
                    "paths={} unknown={}",
                    result.paths.len(),
                    result.stats.unknown
                )
            });
        }

        self.tree = saved_tree;
        self.cur = saved_cur;
        self.path = saved_path;
        self.exploring = saved_exploring;
        self.config = saved_config;
        self.in_summary = saved_in_summary;
        summary
    }

    /// The current path condition (for diagnostics and tests).
    pub fn current_path_condition(&self) -> &[TermId] {
        &self.path
    }

    fn kill_path_at_current_node(&mut self) {
        self.tree.force_done(self.cur, false);
        self.tree.force_done(self.cur, true);
        self.dead = true;
    }
}

impl Dom for Executor {
    type V = TermId;

    fn constant(&mut self, w: Width, v: u64) -> TermId {
        self.pool.constant(w, v)
    }

    fn width(&self, v: TermId) -> Width {
        self.pool.width(v)
    }

    fn as_const(&self, v: TermId) -> Option<u64> {
        self.pool.as_const(v)
    }

    fn add(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.add(a, b)
    }

    fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.sub(a, b)
    }

    fn mul(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.mul(a, b)
    }

    fn udiv(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.udiv(a, b)
    }

    fn urem(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.urem(a, b)
    }

    fn and(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.and(a, b)
    }

    fn or(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.or(a, b)
    }

    fn xor(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.xor(a, b)
    }

    fn not(&mut self, a: TermId) -> TermId {
        self.pool.not(a)
    }

    fn neg(&mut self, a: TermId) -> TermId {
        self.pool.neg(a)
    }

    fn shl(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.shl(a, b)
    }

    fn lshr(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.lshr(a, b)
    }

    fn ashr(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.ashr(a, b)
    }

    fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.eq(a, b)
    }

    fn ult(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.ult(a, b)
    }

    fn slt(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.slt(a, b)
    }

    fn ite(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        self.pool.ite(c, t, e)
    }

    fn extract(&mut self, a: TermId, hi: u8, lo: u8) -> TermId {
        self.pool.extract(a, hi, lo)
    }

    fn concat(&mut self, hi: TermId, lo: TermId) -> TermId {
        self.pool.concat(hi, lo)
    }

    fn zext(&mut self, a: TermId, w: Width) -> TermId {
        self.pool.zext(a, w)
    }

    fn sext(&mut self, a: TermId, w: Width) -> TermId {
        self.pool.sext(a, w)
    }

    fn branch(&mut self, cond: TermId, site: &'static str) -> bool {
        if let Some(c) = self.pool.as_const(cond) {
            return c != 0;
        }
        if self.dead {
            return false;
        }
        if self.branches_this_path >= self.config.max_branches_per_path {
            self.kill_path_at_current_node();
            return false;
        }
        let _t = timed(self.metrics.fork_ns);
        self.stats.branches += 1;
        self.metrics.forks.inc();
        self.branches_this_path += 1;
        let node = self.cur;
        let ncond = self.pool.not(cond);
        // Resolve unknown feasibilities lazily; checking one direction can
        // sometimes be skipped if the other is infeasible (the path condition
        // itself is satisfiable, so at least one direction must be feasible).
        for dir in [false, true] {
            if self.tree.feasibility(node, dir) == Feasibility::Unknown
                && !self.tree.dir_done(node, dir)
            {
                let term = if dir { cond } else { ncond };
                let feas = self.check_feasible(term);
                if !feas {
                    self.metrics.pruned_branches.inc();
                }
                self.tree.set_feasibility(
                    node,
                    dir,
                    if feas {
                        Feasibility::Feasible
                    } else {
                        Feasibility::Infeasible
                    },
                );
            }
        }
        let candidates: Vec<bool> = [false, true]
            .into_iter()
            .filter(|&d| {
                self.tree.feasibility(node, d) == Feasibility::Feasible
                    && !self.tree.dir_done(node, d)
            })
            .collect();
        let dir = match candidates.len() {
            0 => {
                // All directions exhausted or infeasible: the replay is
                // stale (or the program is nondeterministic). Abandon.
                self.kill_path_at_current_node();
                return false;
            }
            1 => candidates[0],
            _ => candidates[self.rng.gen_range(0..candidates.len())],
        };
        // Fold (site, direction) into the path-id hash: the decision list
        // identifies the path, and hashing the site name (not the term id)
        // keeps ids stable across engines and worker scheduling.
        self.path_hash = fnv1a(self.path_hash, site.as_bytes());
        self.path_hash = fnv1a(self.path_hash, &[dir as u8]);
        self.path.push(if dir { cond } else { ncond });
        self.cur = self.tree.child(node, dir);
        dir
    }

    fn concretize(&mut self, v: TermId, site: &'static str) -> u64 {
        if let Some(c) = self.pool.as_const(v) {
            return c;
        }
        let w = self.pool.width(v);
        let mut out = 0u64;
        // MSB-first per-bit branching (§3.1.2): only feasible values are
        // chosen, and across paths every feasible value is eventually tried.
        for i in (0..w).rev() {
            let bit = self.pool.extract(v, i, i);
            if self.branch(bit, site) {
                out |= 1 << i;
            }
        }
        out
    }

    fn pick(&mut self, v: TermId, site: &'static str) -> u64 {
        if let Some(c) = self.pool.as_const(v) {
            return c;
        }
        if self.dead {
            return 0;
        }
        if let Some(&cached) = self.pick_cache.get(&(self.cur, v)) {
            self.metrics.pick_cache_hits.inc();
            let c = self.pool.constant(self.pool.width(v), cached);
            let eq = self.pool.eq(v, c);
            self.path.push(eq);
            return cached;
        }
        let model = {
            let _o = origin::scoped("pick");
            origin::set_path_id(self.path_hash);
            self.solver.check_with_model(&self.pool, &self.path)
        };
        let model = match model {
            Some(m) => m,
            None => {
                // Path condition became unsatisfiable through assumptions —
                // indicates misuse of `assume`; abandon the path.
                self.kill_path_at_current_node();
                return 0;
            }
        };
        // Evaluate under the model, defaulting unconstrained variables to 0.
        let mut env: HashMap<VarId, u64> = HashMap::new();
        for var in self.pool.variables_of(v) {
            env.insert(var, model.value_or(var, 0));
        }
        let val = self.pool.eval(v, &env);
        let c = self.pool.constant(self.pool.width(v), val);
        let eq = self.pool.eq(v, c);
        self.path.push(eq);
        self.pick_cache.insert((self.cur, v), val);
        let _ = site;
        val
    }

    fn assume(&mut self, cond: TermId) {
        match self.pool.as_const(cond) {
            Some(0) => self.dead = true,
            Some(_) => {}
            None => self.path.push(cond),
        }
    }

    fn summary_hook(&mut self, key: &'static str, args: &[TermId]) -> Option<Vec<TermId>> {
        let summary = self.summaries.get(key)?.clone();
        self.metrics.summary_hits.inc();
        let _t = timed(self.metrics.summary_ns);
        Some(summary.apply(&mut self.pool, args))
    }

    fn fresh_input(&mut self, w: Width, name: &str) -> TermId {
        self.named_input(w, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explores_both_sides_of_a_branch() {
        let mut exec = Executor::new();
        let r = exec.explore(|e| {
            let x = e.fresh_input(8, "x");
            let k = e.constant(8, 42);
            let c = e.eq(x, k);
            e.branch(c, "x==42")
        });
        assert!(r.complete);
        assert_eq!(r.paths.len(), 2);
        // Each path's model must respect the branch taken.
        for p in &r.paths {
            let v = p.model.value_or(VarId(0), 0);
            assert_eq!(p.value, v == 42);
        }
    }

    #[test]
    fn infeasible_paths_are_pruned() {
        // if (x > y) x = y; if (x > y) abort();  — §3.1.2's example: the
        // second condition can never be true.
        let mut exec = Executor::new();
        let r = exec.explore(|e| {
            let mut x = e.fresh_input(8, "x");
            let y = e.fresh_input(8, "y");
            let gt = e.ult(y, x);
            if e.branch(gt, "x>y") {
                x = y;
            }
            let gt2 = e.ult(y, x);
            if e.branch(gt2, "x>y (2)") {
                panic!("infeasible path executed");
            }
            ()
        });
        assert!(r.complete);
        assert_eq!(r.paths.len(), 2);
    }

    #[test]
    fn concretize_enumerates_all_feasible_values() {
        let mut exec = Executor::new();
        let r = exec.explore(|e| {
            let x = e.fresh_input(8, "x");
            let hi = e.constant(8, 5);
            let inrange = e.ult(x, hi);
            e.assume(inrange);
            e.concretize(x, "switch")
        });
        assert!(r.complete);
        let mut vals: Vec<u64> = r.paths.iter().map(|p| p.value).collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pick_chooses_one_value_only() {
        let mut exec = Executor::new();
        let r = exec.explore(|e| {
            let x = e.fresh_input(32, "x");
            e.pick(x, "table index")
        });
        assert!(r.complete);
        assert_eq!(r.paths.len(), 1, "pick must not fork");
    }

    #[test]
    fn loop_paths_are_distinguished() {
        // FuzzBALL "considers a different number of executions of a loop as
        // distinguishing a different execution path" (§3.1.2).
        let mut exec = Executor::new();
        let r = exec.explore(|e| {
            let n = e.fresh_input(8, "n");
            let four = e.constant(8, 4);
            let bounded = e.ult(n, four);
            e.assume(bounded);
            let mut count = 0u32;
            loop {
                let i = e.constant(8, count as u64);
                let cont = e.ult(i, n);
                if !e.branch(cont, "loop") {
                    break;
                }
                count += 1;
            }
            count
        });
        assert!(r.complete);
        let mut counts: Vec<u32> = r.paths.iter().map(|p| p.value).collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![0, 1, 2, 3]);
    }

    #[test]
    fn starved_solver_degrades_exploration_instead_of_panicking() {
        let mut exec = Executor::new();
        exec.solver_mut().set_max_conflicts(Some(0));
        let r = exec.explore(|e| {
            let x = e.fresh_input(8, "x");
            let k = e.constant(8, 42);
            let c = e.eq(x, k);
            e.branch(c, "x==42")
        });
        // Every feasibility query came back Unknown, so both directions were
        // pruned: no paths, but crucially no panic and an honest verdict.
        assert!(!r.complete);
        assert!(r.stats.unknown > 0);
        assert_eq!(r.paths.len(), 0);
    }

    #[test]
    fn expired_deadline_stops_exploration_cleanly() {
        let mut exec = Executor::with_config(ExploreConfig {
            deadline: Some(std::time::Instant::now()),
            ..Default::default()
        });
        let r = exec.explore(|e| {
            let x = e.fresh_input(8, "x");
            e.concretize(x, "wide")
        });
        assert!(!r.complete);
        assert_eq!(r.paths.len(), 0);
        assert_eq!(r.stats.deadline_trips, 1);
    }

    #[test]
    fn try_summarize_returns_none_when_solver_is_starved() {
        let mut exec = Executor::new();
        exec.solver_mut().set_max_conflicts(Some(0));
        let s = exec.try_summarize(&[(8, "a")], |e, f| {
            let z = e.constant(8, 0);
            let c = e.eq(f[0], z);
            let one = e.constant(8, 1);
            let two = e.constant(8, 2);
            vec![if e.branch(c, "a==0") { one } else { two }]
        });
        assert!(s.is_none());
    }

    #[test]
    fn path_cap_marks_incomplete() {
        let mut exec = Executor::with_config(ExploreConfig {
            max_paths: 4,
            ..Default::default()
        });
        let r = exec.explore(|e| {
            let x = e.fresh_input(8, "x");
            e.concretize(x, "wide") // 256 feasible values
        });
        assert!(!r.complete);
        assert_eq!(r.paths.len(), 4);
    }

    #[test]
    fn solver_queries_bill_to_their_origin() {
        let before = pokemu_rt::metrics::snapshot();
        let mut exec = Executor::new();
        let r = exec.explore(|e| {
            let x = e.fresh_input(8, "x");
            let k = e.constant(8, 7);
            let c = e.eq(x, k);
            e.branch(c, "x==7")
        });
        assert!(r.complete);
        let d = pokemu_rt::metrics::snapshot().since(&before);
        // Two paths: each needs feasibility resolution at the branch and a
        // path-end model. Floors, not exact counts — sibling tests in this
        // binary hit the same process-global counters concurrently.
        assert!(
            d.counter("solver.queries.feasibility") >= 2,
            "branch feasibility checks must bill to the feasibility origin"
        );
        assert!(
            d.counter("solver.queries.model") >= 2,
            "path-end model extraction must bill to the model origin"
        );
    }

    #[test]
    fn summary_queries_bill_to_the_summary_origin() {
        let before = pokemu_rt::metrics::snapshot();
        let mut exec = Executor::new();
        let s = exec.try_summarize(&[(8, "a")], |e, f| {
            let z = e.constant(8, 0);
            let c = e.eq(f[0], z);
            let one = e.constant(8, 1);
            let two = e.constant(8, 2);
            vec![if e.branch(c, "a==0") { one } else { two }]
        });
        assert!(s.is_some());
        let d = pokemu_rt::metrics::snapshot().since(&before);
        assert!(
            d.counter("solver.queries.summary") >= 2,
            "sub-exploration queries must bill to the summary origin, got:\n{:?}",
            d.counters
                .iter()
                .filter(|(k, _)| k.starts_with("solver.queries"))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn named_inputs_are_stable_across_paths() {
        let mut exec = Executor::new();
        let r = exec.explore(|e| {
            let a = e.named_input(8, "state_al");
            let b = e.named_input(8, "state_al");
            assert_eq!(a, b);
            let z = e.constant(8, 0);
            let c = e.eq(a, z);
            e.branch(c, "al==0")
        });
        assert_eq!(r.paths.len(), 2);
    }

    #[test]
    fn assume_constrains_models() {
        let mut exec = Executor::new();
        let r = exec.explore(|e| {
            let x = e.fresh_input(8, "x");
            let k = e.constant(8, 0xf0);
            let masked = e.and(x, k);
            let v = e.constant(8, 0xa0);
            let c = e.eq(masked, v);
            e.assume(c);
            let lo = e.extract(x, 3, 0);
            let z = e.constant(4, 0);
            let c2 = e.eq(lo, z);
            e.branch(c2, "low nibble zero")
        });
        assert!(r.complete);
        assert_eq!(r.paths.len(), 2);
        for p in &r.paths {
            let v = p.model.value_or(VarId(0), 0);
            assert_eq!(v & 0xf0, 0xa0, "assume must hold in every model");
            assert_eq!(p.value, v & 0x0f == 0);
        }
    }
}
