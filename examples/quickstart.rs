//! Quickstart: lift tests from the Hi-Fi emulator for one instruction and
//! cross-validate the Lo-Fi emulator against the hardware oracle.
//!
//! ```text
//! cargo run --release --example quickstart [first_byte_hex]
//! ```

use pokemu::harness::{run_cross_validation, PipelineConfig};

fn main() {
    // `leave` by default: small, and it carries one of the paper's headline
    // findings (the non-atomic ESP update, §6.2).
    let first_byte = std::env::args()
        .nth(1)
        .map(|s| u8::from_str_radix(s.trim_start_matches("0x"), 16).expect("hex byte"))
        .unwrap_or(0xc9);

    println!("== PokeEMU-rs quickstart: exploring opcode {first_byte:#04x} ==\n");
    let report = run_cross_validation(PipelineConfig {
        first_byte: Some(first_byte),
        max_paths_per_insn: 256,
        ..PipelineConfig::default()
    });

    println!("candidate encodings:   {}", report.candidates);
    println!("unique instructions:   {}", report.unique_instructions);
    println!(
        "fully explored:        {} ({:.0}%)",
        report.fully_explored,
        100.0 * report.fully_explored as f64 / report.unique_instructions.max(1) as f64
    );
    println!("test programs (paths): {}", report.total_paths);
    println!();
    println!(
        "differences vs hardware (raw):      lofi={}  hifi={}",
        report.lofi_differences, report.hifi_differences
    );
    println!(
        "after undefined-behavior filter:    lofi={}  hifi={}",
        report.lofi_filtered, report.hifi_filtered
    );
    println!();
    println!("Lo-Fi root-cause clusters:");
    for (cause, count, examples) in report.lofi_clusters.iter() {
        println!(
            "  {count:6}  {cause}   e.g. {}",
            examples.first().cloned().unwrap_or_default()
        );
    }
    if report.lofi_clusters.is_empty() {
        println!("  (none)");
    }
    println!();
    println!("Hi-Fi root-cause clusters:");
    for (cause, count, examples) in report.hifi_clusters.iter() {
        println!(
            "  {count:6}  {cause}   e.g. {}",
            examples.first().cloned().unwrap_or_default()
        );
    }
    if report.hifi_clusters.is_empty() {
        println!("  (none)");
    }
}
