//! Reproduces the paper's Figure 5: the generated test program for
//! `push %eax` with a modified stack-segment descriptor, shown as the
//! machine-state assignment (Fig. 5a) and the generated initializer code
//! (Fig. 5b), then executed on all three targets.
//!
//! ```text
//! cargo run --release --example sample_testcase
//! ```

use pokemu::harness::{compare, run_on_all_targets};
use pokemu::isa::state::Gpr;
use pokemu::lofi::Fidelity;
use pokemu::testgen::{layout, GadgetPlan, StateItem, TestProgram, TestState};

fn main() {
    // Fig. 5(a): the exploration output — a stack pointer and two bytes of
    // the tenth GDT entry (the SS descriptor's type and flags bytes).
    let state = TestState {
        items: vec![
            StateItem::Gpr(Gpr::Esp, 0x002007dc),
            StateItem::MemByte(layout::GDT_BASE + 10 * 8 + 5, 0x93),
            StateItem::MemByte(layout::GDT_BASE + 10 * 8 + 6, 0x00),
        ],
    };
    println!("== Figure 5(a): machine-state assignment ==");
    println!("  %esp             : 0x002007dc");
    println!(
        "  {:#010x}: 0x93 (gdt 10, type/S/DPL/P byte)",
        layout::GDT_BASE + 10 * 8 + 5
    );
    println!(
        "  {:#010x}: 0x00 (gdt 10, limit-high/flags byte: G=0 -> tiny limit)",
        layout::GDT_BASE + 10 * 8 + 6
    );
    println!();

    println!("== Figure 5(b): generated test-state initializer ==");
    let plan = GadgetPlan::build(&state).expect("sequencable");
    for (i, line) in plan.describe().iter().enumerate() {
        println!("  {:2}  {}", i + 1, line);
    }
    println!("  ..  test instruction: push %eax  (50)");
    println!("  ..  hlt");
    println!();

    let prog = TestProgram::build("fig5/push_eax".into(), state, &[0x50]).expect("builds");
    println!(
        "test program: {} bytes of code at {:#x} (test instruction at +{:#x})",
        prog.code.len(),
        layout::CODE_BASE,
        prog.test_insn_offset
    );
    println!();

    println!("== Execution on all targets ==");
    let case = run_on_all_targets(&prog, Fidelity::QEMU_LIKE);
    println!(
        "  hardware: {:?}  esp={:#x}",
        case.hardware.outcome, case.hardware.gpr[4]
    );
    println!(
        "  hi-fi:    {:?}  esp={:#x}",
        case.hifi.outcome, case.hifi.gpr[4]
    );
    println!(
        "  lo-fi:    {:?}  esp={:#x}",
        case.lofi.outcome, case.lofi.gpr[4]
    );
    println!();
    match compare(&case.hardware, &case.lofi, &prog.test_insn) {
        None => println!("lo-fi agrees with hardware on this test"),
        Some(d) => {
            println!("lo-fi differs from hardware — root cause: {}", d.cause);
            for c in &d.components {
                println!("  {c}");
            }
        }
    }
}
