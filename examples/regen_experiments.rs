//! Regenerates every experiment in EXPERIMENTS.md (E1-E8, A1): the paper's
//! quantitative claims, measured on this reproduction.
//!
//! ```text
//! POKEMU_SCALE=quick cargo run --release --example regen_experiments
//! POKEMU_SCALE=full  cargo run --release --example regen_experiments
//! ```
//!
//! `quick` sweeps a representative opcode subset (minutes); `full` explores
//! the entire first-byte space (tens of minutes).

use std::time::Instant;

use pokemu::explore::{
    explore_instruction_space, explore_state_space, InsnSpaceConfig, StateSpaceConfig,
};
use pokemu::harness::{
    baseline_snapshot, run_cross_validation, run_random_baseline, PipelineConfig, RandomConfig,
};
use pokemu::lofi::Fidelity;

fn main() {
    let scale = std::env::var("POKEMU_SCALE").unwrap_or_else(|_| "quick".into());
    let full = scale == "full";
    let tiny = scale == "tiny";
    println!("# PokeEMU-rs experiment regeneration ({scale})");
    println!();

    e1_insn_exploration(full);
    let e2 = e2_e3_pipeline(full, tiny);
    e5_random_vs_lifting(e2);
    e6_cost_breakdown();
    e7_summarization();
    e8_minimization();
    a1_fidelity_ablation();
}

fn e1_insn_exploration(full: bool) {
    println!("## E1: instruction-set exploration (paper: 68,977 candidates -> 880 unique)");
    let t = Instant::now();
    if full {
        let r = explore_instruction_space(InsnSpaceConfig::default());
        println!(
            "measured: {} candidates -> {} unique instructions ({} invalid paths, complete={}) in {:.1?}",
            r.candidates,
            r.classes.len(),
            r.invalid,
            r.complete,
            t.elapsed()
        );
    } else {
        // Representative sample of first bytes across the decode forms.
        let mut candidates = 0;
        let mut classes = 0;
        let mut invalid = 0;
        for byte in [0x00u8, 0x0f, 0x50, 0x80, 0x8e, 0xc1, 0xc9, 0xd4, 0xf7, 0xff] {
            let r = explore_instruction_space(InsnSpaceConfig {
                first_byte: Some(byte),
                second_byte: None,
                max_paths: 100_000,
            });
            candidates += r.candidates;
            classes += r.classes.len();
            invalid += r.invalid;
        }
        println!(
            "measured (10-byte sample): {candidates} candidates -> {classes} unique ({invalid} invalid) in {:.1?}",
            t.elapsed()
        );
    }
    println!();
}

fn e2_e3_pipeline(full: bool, tiny: bool) -> usize {
    println!("## E2/E3: state exploration + cross-validation");
    println!("   (paper: 610,516 paths; >=95% instructions fully explored;");
    println!("    60,770 QEMU diffs and 15,219 Bochs diffs vs hardware)");
    let sweep: Vec<u8> = if full {
        (0u8..=0xff).collect()
    } else if tiny {
        vec![0x50, 0x74, 0x8e, 0xa2, 0xc9, 0xcf, 0xd6]
    } else {
        vec![
            0x00, 0x40, 0x50, 0x74, 0x8e, 0x98, 0xa2, 0xc1, 0xc9, 0xcf, 0xd6, 0xf7, 0x0f,
        ]
    };
    let t = Instant::now();
    let mut insns = 0;
    let mut full_cov = 0;
    let mut paths = 0;
    let (mut lofi_raw, mut hifi_raw, mut lofi_filt, mut hifi_filt) = (0, 0, 0, 0);
    let mut lofi_causes = std::collections::BTreeMap::<String, usize>::new();
    for byte in sweep {
        let r = run_cross_validation(PipelineConfig {
            first_byte: Some(byte),
            max_paths_per_insn: if full {
                1024
            } else if tiny {
                96
            } else {
                192
            },
            ..PipelineConfig::default()
        });
        insns += r.unique_instructions;
        full_cov += r.fully_explored;
        paths += r.total_paths;
        lofi_raw += r.lofi_differences;
        hifi_raw += r.hifi_differences;
        lofi_filt += r.lofi_filtered;
        hifi_filt += r.hifi_filtered;
        for (cause, count, _) in r.lofi_clusters.iter() {
            *lofi_causes.entry(cause.to_string()).or_default() += count;
        }
    }
    println!(
        "measured: {insns} instructions, {paths} paths (test programs) in {:.1?}",
        t.elapsed()
    );
    println!(
        "complete path coverage: {full_cov}/{insns} instructions = {:.1}% (paper: ~95%)",
        100.0 * full_cov as f64 / insns.max(1) as f64
    );
    println!(
        "raw differences vs hardware:  lofi {lofi_raw} ({:.1}%)  hifi {hifi_raw} ({:.1}%)",
        100.0 * lofi_raw as f64 / paths.max(1) as f64,
        100.0 * hifi_raw as f64 / paths.max(1) as f64
    );
    println!("   shape check: lofi diffs >> hifi diffs, as in the paper (60,770 vs 15,219)");
    println!("after UB filter: lofi {lofi_filt}  hifi {hifi_filt}");
    println!("## E4: Lo-Fi root causes (paper section 6.2 classes)");
    for (cause, n) in &lofi_causes {
        println!("  {n:6}  {cause}");
    }
    println!();
    paths
}

fn e5_random_vs_lifting(lifting_paths: usize) {
    println!("## E5: random testing vs path-exploration lifting");
    println!("   (paper: random testing misses corner cases, e.g. iret straddling a fault)");
    let t = Instant::now();
    let r = run_random_baseline(RandomConfig {
        tests: lifting_paths.clamp(100, 3000),
        ..Default::default()
    });
    let named: Vec<String> = r
        .lofi_clusters
        .iter()
        .filter(|(c, _, _)| c.is_identified())
        .map(|(c, n, _)| format!("{c} x{n}"))
        .collect();
    println!(
        "random baseline: {} tests, {} lofi diffs, {} named root causes in {:.1?}",
        r.tests,
        r.lofi_differences,
        named.len(),
        t.elapsed()
    );
    for c in &named {
        println!("  {c}");
    }
    println!("   compare against E4: lifting identifies the corner-case classes random missed");
    println!();
}

fn e6_cost_breakdown() {
    println!("## E6: cost breakdown (paper: generation 545.4 CPU-h dominated by the solver;");
    println!("   execution 198.7/391.9/48.5 CPU-h; both highly parallel)");
    let baseline = baseline_snapshot();
    let insn = [0xf7u8, 0xf1]; // div ecx: a branchy instruction
    let t = Instant::now();
    let space = explore_state_space(
        &insn,
        &baseline,
        StateSpaceConfig {
            max_paths: 256,
            ..Default::default()
        },
    );
    let gen_time = t.elapsed();
    let progs = pokemu::explore::to_test_programs(&space, "e6");
    let t = Instant::now();
    for p in &progs {
        let _ = pokemu::harness::run_on_all_targets(p, Fidelity::QEMU_LIKE);
    }
    let exec_time = t.elapsed();
    println!(
        "measured (div ecx): {} paths; generation {gen_time:.1?} ({} solver queries), execution x3 targets {exec_time:.1?}",
        space.paths.len(),
        space.solver_queries
    );
    println!(
        "per test: generation {:.2?}, execution {:.2?}  -> generation dominates, as in the paper",
        gen_time / space.paths.len().max(1) as u32,
        exec_time / progs.len().max(1) as u32
    );
    // Thread scaling.
    for threads in [1usize, 2] {
        let t = Instant::now();
        let _ = run_cross_validation(PipelineConfig {
            first_byte: Some(0x80),
            max_paths_per_insn: 48,
            threads,
            ..PipelineConfig::default()
        });
        println!(
            "pipeline on opcode 0x80 with {threads} thread(s): {:.1?}",
            t.elapsed()
        );
    }
    println!();
}

fn e7_summarization() {
    println!(
        "## E7: descriptor-cache summarization (paper: 23 paths/segment, 23^6 blowup avoided)"
    );
    let baseline = baseline_snapshot();
    let insn = [0x8e, 0xd8]; // mov ds, ax: a segment-loading instruction
    for (label, use_summaries) in [("with summaries", true), ("without", false)] {
        let t = Instant::now();
        let space = explore_state_space(
            &insn,
            &baseline,
            StateSpaceConfig {
                max_paths: 512,
                use_summaries,
                ..Default::default()
            },
        );
        println!(
            "  {label:16}: {} paths, complete={}, {} solver queries, {:.1?}",
            space.paths.len(),
            space.complete,
            space.solver_queries,
            t.elapsed()
        );
    }
    println!();
}

fn e8_minimization() {
    println!("## E8: state-difference minimization (paper: no initializer-generation failures)");
    let baseline = baseline_snapshot();
    let mut before = 0usize;
    let mut after = 0usize;
    let mut programs = 0usize;
    let mut failures = 0usize;
    for insn in [vec![0xc9], vec![0x74, 0x02], vec![0xf7, 0xf1], vec![0x50]] {
        let space = explore_state_space(
            &insn,
            &baseline,
            StateSpaceConfig {
                max_paths: 128,
                ..Default::default()
            },
        );
        for p in &space.paths {
            before += p.minimize.bits_before;
            after += p.minimize.bits_after;
            match pokemu::testgen::TestProgram::build("e8".into(), p.state.clone(), &insn) {
                Ok(_) => programs += 1,
                Err(_) => failures += 1,
            }
        }
    }
    println!(
        "  bits differing from baseline: {before} before -> {after} after minimization ({:.1}% kept)",
        100.0 * after as f64 / before.max(1) as f64
    );
    println!("  initializer generation: {programs} ok, {failures} failures (paper: none fail)");
    println!();
}

fn a1_fidelity_ablation() {
    println!("## A1: fidelity ablation — each fix eliminates its cluster");
    let cases: &[(&str, u8, Fidelity)] = &[
        ("baseline (QEMU-like)", 0xc9, Fidelity::QEMU_LIKE),
        (
            "+atomic leave",
            0xc9,
            Fidelity {
                atomic_leave: true,
                ..Fidelity::QEMU_LIKE
            },
        ),
        ("baseline (QEMU-like)", 0xa2, Fidelity::QEMU_LIKE),
        (
            "+segment checks",
            0xa2,
            Fidelity {
                enforce_segment_checks: true,
                ..Fidelity::QEMU_LIKE
            },
        ),
    ];
    for &(label, byte, fid) in cases {
        let r = run_cross_validation(PipelineConfig {
            first_byte: Some(byte),
            max_paths_per_insn: 96,
            lofi_fidelity: fid,
            ..PipelineConfig::default()
        });
        let causes: Vec<String> = r
            .lofi_clusters
            .iter()
            .map(|(c, n, _)| format!("{c} x{n}"))
            .collect();
        println!(
            "  opcode {byte:#04x} {label:22}: {} filtered diffs [{}]",
            r.lofi_filtered,
            causes.join("; ")
        );
    }
    println!();
}
