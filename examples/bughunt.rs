//! Bug hunt: sweep the opcodes behind the paper's §6.2 findings and print
//! the root-cause report — a miniature of the paper's difference analysis.
//!
//! ```text
//! cargo run --release --example bughunt
//! ```

use pokemu::harness::{run_cross_validation, Clusters, PipelineConfig};

fn main() {
    // Opcodes hosting the paper's root causes: leave (atomicity), cmpxchg
    // (atomicity), iret (pop order), two-byte opcodes (rdmsr, segment-load
    // accessed flag), mov moffs (segment limits), salc (rejected encoding),
    // mul/div (undefined flags).
    let sweep: &[(u8, &str)] = &[
        (0xc9, "leave"),
        (0xcf, "iret"),
        (0xa2, "mov [moffs], al"),
        (0xd6, "salc"),
        (0x8e, "mov sreg, r/m16"),
        (0xf7, "group f7 (mul/div/...)"),
        (0x0f, "two-byte opcodes"),
    ];

    let mut lofi_total = Clusters::new();
    let mut hifi_total = Clusters::new();
    let mut paths = 0usize;
    let mut lofi_raw = 0usize;
    let mut hifi_raw = 0usize;

    for &(byte, name) in sweep {
        println!("exploring {byte:#04x} ({name}) ...");
        let r = run_cross_validation(PipelineConfig {
            first_byte: Some(byte),
            max_paths_per_insn: 192,
            ..PipelineConfig::default()
        });
        println!(
            "  {} instructions, {} paths, lofi diffs {} (filtered {})",
            r.unique_instructions, r.total_paths, r.lofi_differences, r.lofi_filtered
        );
        paths += r.total_paths;
        lofi_raw += r.lofi_differences;
        hifi_raw += r.hifi_differences;
        for (cause, count, examples) in r.lofi_clusters.iter() {
            for _ in 0..count {
                lofi_total.add(
                    examples.first().map(String::as_str).unwrap_or("?"),
                    &pokemu::harness::Difference {
                        components: Vec::new(),
                        cause: cause.clone(),
                        insn: Vec::new(),
                        path_id: 0,
                    },
                );
            }
        }
        for (cause, count, examples) in r.hifi_clusters.iter() {
            for _ in 0..count {
                hifi_total.add(
                    examples.first().map(String::as_str).unwrap_or("?"),
                    &pokemu::harness::Difference {
                        components: Vec::new(),
                        cause: cause.clone(),
                        insn: Vec::new(),
                        path_id: 0,
                    },
                );
            }
        }
    }

    println!();
    println!("================ BUG HUNT REPORT ================");
    println!("test programs executed: {paths}  (x3 targets)");
    println!("raw differences vs hardware: lofi={lofi_raw} hifi={hifi_raw}");
    println!();
    println!("Lo-Fi (QEMU-like) root causes:");
    for (cause, count, _) in lofi_total.iter() {
        println!("  {count:6}  {cause}");
    }
    println!();
    println!("Hi-Fi (Bochs-like) root causes:");
    for (cause, count, _) in hifi_total.iter() {
        println!("  {count:6}  {cause}");
    }
}
