#!/usr/bin/env bash
# Runs the gated bench trajectory: every pokemu-bench workload under fixed
# seeds, writing target/bench/<workload>.perf.json, then gates the results
# against the committed baselines in tests/baselines/bench/.
#
#   scripts/bench.sh            run workloads + gate
#   scripts/bench.sh --no-check run workloads only
#
# Exit codes follow pokemu-report bench: 0 OK, 1 a workload left its
# baseline band (the violation names it), 2 missing input.
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=1
[ "${1:-}" = "--no-check" ] && CHECK=0

cargo build --release --offline -p pokemu-bench

echo "== bench workloads"
cargo run --release --offline -q -p pokemu-bench --bin pokemu-bench

if [ "$CHECK" = 1 ]; then
  echo "== bench gate"
  cargo run --release --offline -q -p pokemu-bench --bin pokemu-report -- bench --check
fi
