#!/usr/bin/env bash
# Offline CI gate for the PokeEMU-rs workspace. The workspace has zero
# external dependencies, so everything here must pass with no network.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo build --release"
cargo build --workspace --release --offline

echo "== cargo test"
cargo test --workspace --offline -q

echo "== smoke bench (pokemu_rt::bench end to end)"
cargo run --release --offline -p pokemu-bench --bin smoke-bench

echo "CI OK"
