#!/usr/bin/env bash
# Offline CI gate for the PokeEMU-rs workspace. The workspace has zero
# external dependencies, so everything here must pass with no network.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo build --release"
cargo build --workspace --release --offline

echo "== cargo test"
cargo test --workspace --offline -q

echo "== smoke bench (pokemu_rt::bench end to end)"
cargo run --release --offline -p pokemu-bench --bin smoke-bench

echo "== trace smoke (pokemu_rt::trace end to end)"
# Re-run the smoke bench with tracing on: the pipeline exports a Chrome
# trace + metrics dump, and pokemu-report --check gates on the trace
# parsing, all five Fig.1 stage spans being present, and zero dropped
# trace events.
POKEMU_TRACE=1 cargo run --release --offline -p pokemu-bench --bin smoke-bench
cargo run --release --offline -p pokemu-bench --bin pokemu-report -- --check --top 5

echo "CI OK"
