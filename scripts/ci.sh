#!/usr/bin/env bash
# Offline CI gate for the PokeEMU-rs workspace. The workspace has zero
# external dependencies, so everything here must pass with no network.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo build --release"
cargo build --workspace --release --offline

echo "== cargo test"
cargo test --workspace --offline -q

echo "== smoke bench (pokemu_rt::bench end to end)"
cargo run --release --offline -p pokemu-bench --bin smoke-bench

echo "== trace smoke (pokemu_rt::trace end to end)"
# Re-run the smoke bench with tracing + the run manifest on: the pipeline
# exports a Chrome trace + metrics dump and writes
# target/run/smoke/manifest.json; pokemu-report --check gates on the trace
# parsing, all five Fig.1 stage spans being present, and zero dropped
# trace events.
POKEMU_TRACE=1 POKEMU_RUN_MANIFEST=1 POKEMU_RUN_ID=smoke \
    cargo run --release --offline -p pokemu-bench --bin smoke-bench
cargo run --release --offline -p pokemu-bench --bin pokemu-report -- --check --top 5

echo "== coverage gate (run manifest vs committed baseline)"
# The smoke run above emitted a manifest with the run's coverage bitmaps
# and root-cause clusters; the gate fails if any coverage bit present in
# the committed baseline is missing from this run or the cluster set
# changed. Refresh the baseline with scripts/refresh-baseline.sh after an
# intentional change.
cargo run --release --offline -p pokemu-bench --bin pokemu-report -- \
    diff --baseline tests/baselines/smoke-manifest.json \
    --manifest target/run/smoke/manifest.json --check

echo "== coverage gate self-test (a coverage-blind run must fail the gate)"
# Prove the gate actually gates: with coverage recording disabled the
# manifest records empty bitmaps, which the diff must reject.
POKEMU_COVERAGE=0 POKEMU_RUN_MANIFEST=1 POKEMU_RUN_ID=smoke-nocov \
    cargo run --release --offline -p pokemu-bench --bin smoke-bench >/dev/null
if cargo run --release --offline -p pokemu-bench --bin pokemu-report -- \
    diff --baseline tests/baselines/smoke-manifest.json \
    --manifest target/run/smoke-nocov/manifest.json --check >/dev/null 2>&1; then
    echo "ERROR: coverage gate passed a coverage-blind run" >&2
    exit 1
fi
echo "coverage gate correctly rejected the coverage-blind run"

echo "CI OK"
