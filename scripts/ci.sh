#!/usr/bin/env bash
# Offline CI gate for the PokeEMU-rs workspace. The workspace has zero
# external dependencies, so everything here must pass with no network.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo build --release"
cargo build --workspace --release --offline

echo "== cargo test"
cargo test --workspace --offline -q

echo "== smoke bench (pokemu_rt::bench end to end)"
cargo run --release --offline -p pokemu-bench --bin smoke-bench

echo "== trace + prof smoke (pokemu_rt::{trace,prof} end to end)"
# Re-run the smoke bench with tracing, profiling, and the run manifest on:
# the pipeline exports a Chrome trace + metrics dump, a collapsed-stack
# .folded profile, the hot-TB table, and target/run/smoke/manifest.json.
# pokemu-report --check gates on the trace parsing, all five Fig.1 stage
# spans being present, and zero dropped trace events; perf --check gates on
# ≥95% of pipeline wall time being attributed to the four stage timers.
POKEMU_TRACE=1 POKEMU_PROF=1 POKEMU_RUN_MANIFEST=1 POKEMU_RUN_ID=smoke \
    cargo run --release --offline -p pokemu-bench --bin smoke-bench
cargo run --release --offline -p pokemu-bench --bin pokemu-report -- --check --top 5
test -s target/prof/cross_validation.folded \
    || { echo "ERROR: POKEMU_PROF=1 run left no .folded profile" >&2; exit 1; }

echo "== perf attribution gate"
cargo run --release --offline -p pokemu-bench --bin pokemu-report -- perf --check --top 5

echo "== coverage gate (run manifest vs committed baseline)"
# The smoke run above emitted a manifest with the run's coverage bitmaps
# and root-cause clusters; the gate fails if any coverage bit present in
# the committed baseline is missing from this run or the cluster set
# changed. Refresh the baseline with scripts/refresh-baseline.sh after an
# intentional change.
cargo run --release --offline -p pokemu-bench --bin pokemu-report -- \
    diff --baseline tests/baselines/smoke-manifest.json \
    --manifest target/run/smoke/manifest.json --check

echo "== coverage gate self-test (a coverage-blind run must fail the gate)"
# Prove the gate actually gates: with coverage recording disabled the
# manifest records empty bitmaps, which the diff must reject.
POKEMU_COVERAGE=0 POKEMU_RUN_MANIFEST=1 POKEMU_RUN_ID=smoke-nocov \
    cargo run --release --offline -p pokemu-bench --bin smoke-bench >/dev/null
if cargo run --release --offline -p pokemu-bench --bin pokemu-report -- \
    diff --baseline tests/baselines/smoke-manifest.json \
    --manifest target/run/smoke-nocov/manifest.json --check >/dev/null 2>&1; then
    echo "ERROR: coverage gate passed a coverage-blind run" >&2
    exit 1
fi
echo "coverage gate correctly rejected the coverage-blind run"

echo "== conformance gate (chained corpus vs committed tests/roms/)"
# Rebuild the conformance corpus and compare every program's behavior
# against the committed expected-deviation baselines: any new deviation,
# vanished deviation, path-id change, or generated-code change fails with
# the violating program names printed. Refresh with
# scripts/refresh-baseline.sh after an intentional change.
cargo run --release --offline -p pokemu-bench --bin pokemu-report -- \
    conformance --roms tests/roms

echo "== conformance gate self-test (a tampered baseline must fail the gate)"
# Prove the gate actually gates: copy the committed baselines, corrupt one
# program's expected deviations, and require the gate to reject exactly
# that program (exit 1, name printed).
rm -rf target/conformance-selftest
mkdir -p target/conformance-selftest
cp tests/roms/*.json target/conformance-selftest/
sed -i 's/"deviations":\[\]/"deviations":[{"target":"lofi","test":"tampered","insn":"90","path_id":1,"cause":"tampered","components":[]}]/' \
    target/conformance-selftest/chain-reload-baseline.json
if cargo run --release --offline -p pokemu-bench --bin pokemu-report -- \
    conformance --roms target/conformance-selftest \
    >target/conformance-selftest/out.log 2>&1; then
    echo "ERROR: conformance gate passed a tampered baseline" >&2
    exit 1
fi
grep -q 'chain/reload-baseline' target/conformance-selftest/out.log \
    || { echo "ERROR: gate failed without naming the tampered program:" >&2; \
         cat target/conformance-selftest/out.log >&2; exit 1; }
echo "conformance gate correctly rejected the tampered baseline"

echo "== chaos smoke (fault injection end to end)"
# Arm a deterministic worker panic on work item 1: the campaign must still
# finish (exit 0), attribute exactly one quarantine record in the manifest,
# and keep its "completed" flag — a finished run with failures attributed
# is a completed run.
POKEMU_FAULT=pool.item:panic:1 POKEMU_RUN_MANIFEST=1 POKEMU_RUN_ID=chaos \
    cargo run --release --offline -p pokemu-bench --bin smoke-bench >/dev/null
grep -q '"completed":true' target/run/chaos/manifest.json \
    || { echo "ERROR: chaos run did not complete" >&2; exit 1; }
grep -q '"quarantined":1' target/run/chaos/manifest.json \
    || { echo "ERROR: chaos run did not quarantine the faulted item" >&2; exit 1; }
echo "chaos run completed with the faulted item quarantined"

echo "== run-deadline smoke (graceful partial run)"
# A 1 ms whole-run deadline: the pipeline must stop dispatching, exit
# cleanly, and write a partial manifest that says so.
POKEMU_RUN_DEADLINE_MS=1 POKEMU_RUN_MANIFEST=1 POKEMU_RUN_ID=deadline \
    cargo run --release --offline -p pokemu-bench --bin smoke-bench >/dev/null
grep -q '"completed":false' target/run/deadline/manifest.json \
    || { echo "ERROR: deadline-cut run claims completion" >&2; exit 1; }
echo "deadline-cut run wrote an honest partial manifest"

echo "== robustness gate self-test (a quarantine regression must fail the gate)"
# The chaos manifest above carries one quarantine; the committed baseline
# carries none, so the diff gate must reject it — and for the quarantine
# regression specifically, not some unrelated violation.
if cargo run --release --offline -p pokemu-bench --bin pokemu-report -- \
    diff --baseline tests/baselines/smoke-manifest.json \
    --manifest target/run/chaos/manifest.json --check \
    >target/run/chaos/diff.out 2>&1; then
    echo "ERROR: diff gate passed a run with a quarantine regression" >&2
    exit 1
fi
grep -q 'robustness.quarantined grew' target/run/chaos/diff.out \
    || { echo "ERROR: gate failed for the wrong reason:" >&2; \
         cat target/run/chaos/diff.out >&2; exit 1; }
echo "diff gate correctly rejected the quarantined run"

echo "== bench gate (fixed-seed workloads vs committed baselines)"
# Run every pokemu-bench workload and gate against tests/baselines/bench/:
# work counts must match exactly, timing ratios must stay inside their
# bands. Refresh with scripts/refresh-baseline.sh after intentional change.
cargo run --release --offline -q -p pokemu-bench --bin pokemu-bench
cargo run --release --offline -p pokemu-bench --bin pokemu-report -- bench --check

echo "== bench gate self-test (an injected solver latency must fail the gate)"
# Re-run only the pipeline_smoke workload with a 50 ms latency fault armed
# on every solver.check call: the solver-query-vs-calibration ratio blows
# its band by orders of magnitude, and the gate must fail naming the
# workload. The other workloads' result files are untouched and stay valid.
mkdir -p target/bench
POKEMU_FAULT='solver.check:latency=50:*' \
    cargo run --release --offline -q -p pokemu-bench --bin pokemu-bench -- \
    --only pipeline_smoke >/dev/null
if cargo run --release --offline -p pokemu-bench --bin pokemu-report -- \
    bench --check >target/bench/selftest.out 2>&1; then
    echo "ERROR: bench gate passed a run with injected solver latency" >&2
    exit 1
fi
grep -q 'pipeline_smoke: ratio solver_query_over_calib' target/bench/selftest.out \
    || { echo "ERROR: bench gate failed without naming the workload:" >&2; \
         cat target/bench/selftest.out >&2; exit 1; }
# Restore a clean result so a re-entrant CI run starts from a passing state.
cargo run --release --offline -q -p pokemu-bench --bin pokemu-bench -- \
    --only pipeline_smoke >/dev/null
echo "bench gate correctly rejected the latency-faulted run"

echo "== chain-off equivalence smoke (POKEMU_LOFI_CHAIN=0 conformance)"
# The chained execution layer (DESIGN.md §11) is a pure execution-strategy
# change: with chaining forced off, the conformance corpus must still match
# every committed expected-deviation baseline byte for byte.
POKEMU_LOFI_CHAIN=0 \
    cargo run --release --offline -p pokemu-bench --bin pokemu-report -- \
    conformance --roms tests/roms
echo "chain-off run matches the committed conformance baselines"

echo "== exec-throughput gate self-test (chain-off must fail the 2x gate)"
# Prove the throughput gate actually gates on the chained layer: with
# POKEMU_LOFI_CHAIN=0 the chain/superblock/IR-skip counters are exactly
# zero, so the count gate fails machine-independently (and the hifi/lofi
# ratio collapses besides). The failure must name exec_throughput.
POKEMU_LOFI_CHAIN=0 \
    cargo run --release --offline -q -p pokemu-bench --bin pokemu-bench -- \
    --only exec_throughput >/dev/null
if cargo run --release --offline -p pokemu-bench --bin pokemu-report -- \
    bench --check >target/bench/chain-selftest.out 2>&1; then
    echo "ERROR: bench gate passed a chain-off exec_throughput run" >&2
    exit 1
fi
grep -q 'exec_throughput' target/bench/chain-selftest.out \
    || { echo "ERROR: bench gate failed without naming exec_throughput:" >&2; \
         cat target/bench/chain-selftest.out >&2; exit 1; }
# Restore a clean result so a re-entrant CI run starts from a passing state.
cargo run --release --offline -q -p pokemu-bench --bin pokemu-bench -- \
    --only exec_throughput >/dev/null
echo "bench gate correctly rejected the chain-off run"

echo "== fleet gate (crash-safe sharded exploration, DESIGN.md §13)"
# A healthy 2-shard fleet run over the 0xf7 group must reproduce the
# committed merged-manifest baseline (coverage bits, clusters, no poisoned
# shards). Refresh with scripts/refresh-baseline.sh after intentional change.
rm -rf target/fleet/ci
POKEMU_HISTORY=0 \
    cargo run --release --offline -p pokemu-bench --bin pokemu-fleet -- \
    run --run-id ci --root target/fleet/ci --shards 2 --first-byte 0xf7 \
    --max-paths 64 --backoff-ms 10
cargo run --release --offline -p pokemu-bench --bin pokemu-report -- \
    diff --baseline tests/baselines/fleet-merged.json \
    --manifest target/fleet/ci/merged.json --check
echo "fleet merged manifest matches the committed baseline"

echo "== fleet kill-one-worker self-test (SIGKILL mid-shard must be survivable)"
# Arm a SIGKILL after every worker's first checkpoint: the coordinator must
# retry each shard (attributed by name in fleet-events.jsonl), finish with
# no poisoned shards, and the resumed merge must be byte-identical to the
# healthy run above.
rm -rf target/fleet/ci-kill
POKEMU_HISTORY=0 POKEMU_FAULT='fleet.checkpoint:kill:1' \
    cargo run --release --offline -p pokemu-bench --bin pokemu-fleet -- \
    run --run-id ci --root target/fleet/ci-kill --shards 2 --first-byte 0xf7 \
    --max-paths 64 --backoff-ms 10
grep -q '"shard":"shard-[01]","event":"retry"' target/fleet/ci-kill/fleet-events.jsonl \
    || { echo "ERROR: no retry event attributed to a shard by name" >&2; \
         cat target/fleet/ci-kill/fleet-events.jsonl >&2; exit 1; }
cmp target/fleet/ci/merged.json target/fleet/ci-kill/merged.json \
    || { echo "ERROR: merged manifest after SIGKILL + resume differs from the uninterrupted run" >&2; exit 1; }
echo "SIGKILLed workers resumed from checkpoints; merge byte-identical"

echo "== fleet poisoned-shard gate self-test (exhausted retries must fail diff)"
# Starve every spawn of shard-0: after --max-attempts the shard is demoted
# to a poisoned record, the run itself still exits 0 (failures attributed,
# other shards unaffected), and the diff gate must reject the merge naming
# the shard.
rm -rf target/fleet/ci-poison
POKEMU_HISTORY=0 POKEMU_FAULT='fleet.spawn:unknown:0' \
    cargo run --release --offline -p pokemu-bench --bin pokemu-fleet -- \
    run --run-id ci --root target/fleet/ci-poison --shards 2 --first-byte 0xf7 \
    --max-paths 64 --max-attempts 2 --backoff-ms 10
if cargo run --release --offline -p pokemu-bench --bin pokemu-report -- \
    diff --baseline tests/baselines/fleet-merged.json \
    --manifest target/fleet/ci-poison/merged.json --check \
    >target/fleet/poison-selftest.out 2>&1; then
    echo "ERROR: diff gate passed a run with a poisoned shard" >&2
    exit 1
fi
grep -q 'fleet.poisoned grew.*shard-0' target/fleet/poison-selftest.out \
    || { echo "ERROR: diff gate failed without naming the poisoned shard:" >&2; \
         cat target/fleet/poison-selftest.out >&2; exit 1; }
echo "diff gate correctly rejected the poisoned-shard run, naming shard-0"

echo "== run ledger + trend gate (cross-run history, DESIGN.md §12)"
# Hermetic history dir: two identical pipeline runs append ledger records,
# `compare` diffs them with causal attribution, and `trend --check` gates
# the newest record against the window — all must pass on a healthy pair.
HDIR=target/history-ci
HLEDGER=$HDIR/ledger.jsonl
rm -rf "$HDIR"
POKEMU_HISTORY_DIR=$HDIR POKEMU_PROF=1 POKEMU_RUN_ID=hist-a \
    cargo run --release --offline -p pokemu-bench --bin smoke-bench >/dev/null
POKEMU_HISTORY_DIR=$HDIR POKEMU_PROF=1 POKEMU_RUN_ID=hist-b \
    cargo run --release --offline -p pokemu-bench --bin smoke-bench >/dev/null
cargo run --release --offline -p pokemu-bench --bin pokemu-report -- \
    compare hist-a hist-b --ledger "$HLEDGER" >target/history-ci/compare.out
grep -q 'attributed' target/history-ci/compare.out \
    || { echo "ERROR: compare printed no attribution summary:" >&2; \
         cat target/history-ci/compare.out >&2; exit 1; }
cargo run --release --offline -p pokemu-bench --bin pokemu-report -- \
    trend --check --ledger "$HLEDGER"
cargo run --release --offline -p pokemu-bench --bin pokemu-report -- \
    history verify --ledger "$HLEDGER"
echo "healthy ledger: compare + trend --check + history verify all pass"

echo "== compare attribution self-test (injected solver latency must be named)"
# Arm a 2 ms latency fault on every solver.check call and append a third
# record: `compare` against the healthy baseline must decompose the
# wall-time regression down to a solver origin (solver.ns.<origin>) by name.
POKEMU_HISTORY_DIR=$HDIR POKEMU_PROF=1 POKEMU_RUN_ID=hist-fault \
    POKEMU_FAULT='solver.check:latency=2:*' \
    cargo run --release --offline -p pokemu-bench --bin smoke-bench >/dev/null
cargo run --release --offline -p pokemu-bench --bin pokemu-report -- \
    compare hist-a hist-fault --ledger "$HLEDGER" >target/history-ci/fault.out
# The solver origin must appear inside the causal-attribution section, not
# merely in the raw timing diff above it.
awk '/== attribution/,0' target/history-ci/fault.out | grep -q 'solver\.ns\.' \
    || { echo "ERROR: compare did not attribute the regression to a solver origin:" >&2; \
         cat target/history-ci/fault.out >&2; exit 1; }
echo "compare correctly attributed the injected latency to a solver origin"

echo "== trend gate self-test (a coverage-blind run must fail by metric name)"
# Observer toggles are deliberately not part of the config fingerprint, so
# a coverage-blind run lands in the same trend group and its cov.*.set
# populations collapse to zero — a deterministic drift the gate must
# reject, naming the metric.
POKEMU_HISTORY_DIR=$HDIR POKEMU_COVERAGE=0 POKEMU_RUN_ID=hist-nocov \
    cargo run --release --offline -p pokemu-bench --bin smoke-bench >/dev/null
if cargo run --release --offline -p pokemu-bench --bin pokemu-report -- \
    trend --check --ledger "$HLEDGER" >target/history-ci/trend.out 2>&1; then
    echo "ERROR: trend gate passed a coverage-blind run" >&2
    exit 1
fi
grep -q 'cov\.opcode\.set' target/history-ci/trend.out \
    || { echo "ERROR: trend gate failed without naming the drifted metric:" >&2; \
         cat target/history-ci/trend.out >&2; exit 1; }
echo "trend gate correctly rejected the coverage-blind run by metric name"

echo "== history verify self-test (a tampered record must fail by file name)"
# Flip one digit inside a stored record body: the content hash no longer
# matches and `history verify` must exit 1 naming the file and line.
cp "$HLEDGER" target/history-ci/tampered.jsonl
sed -i '1s/"seq":1/"seq":9/' target/history-ci/tampered.jsonl
if cargo run --release --offline -p pokemu-bench --bin pokemu-report -- \
    history verify --ledger target/history-ci/tampered.jsonl \
    >target/history-ci/verify.out 2>&1; then
    echo "ERROR: history verify passed a tampered ledger" >&2
    exit 1
fi
grep -q 'tampered\.jsonl:1' target/history-ci/verify.out \
    || { echo "ERROR: verify failed without naming the tampered file/line:" >&2; \
         cat target/history-ci/verify.out >&2; exit 1; }
cargo run --release --offline -p pokemu-bench --bin pokemu-report -- \
    history gc --cap 2 --ledger target/history-ci/tampered.jsonl >/dev/null
[ "$(wc -l <target/history-ci/tampered.jsonl)" -eq 2 ] \
    || { echo "ERROR: history gc --cap 2 did not keep exactly 2 records" >&2; exit 1; }
echo "history verify correctly rejected the tampered ledger"

echo "CI OK"
