#!/usr/bin/env bash
# Regenerates the committed CI baselines from fresh runs:
#   - tests/baselines/smoke-manifest.json (smoke-run coverage/cluster gate)
#   - tests/roms/*.json (chained conformance corpus, DESIGN.md §9)
#   - tests/baselines/bench/*.json (bench-trajectory gate, DESIGN.md §10)
#
# One command: after an intentional coverage/cluster/corpus change, run this
# and commit the updated files. The baselines' comparable sections are
# deterministic for the fixed configs, so the files are machine- and
# thread-count-independent; timings vary but are never compared — the bench
# baselines gate counts exactly and timings only as wide self-normalizing
# ratio bands (measured/8 .. measured*8). Floored ratios are the one
# exception: exec_throughput's hifi_over_lofi band min is pinned at 2.0
# in pokemu-bench (ratio_floor), so refreshing baselines can never relax
# the lofi-at-least-2x-hifi requirement.
set -euo pipefail
cd "$(dirname "$0")/.."

POKEMU_RUN_MANIFEST=1 POKEMU_RUN_ID=smoke \
    cargo run --release --offline -p pokemu-bench --bin smoke-bench
mkdir -p tests/baselines
cp target/run/smoke/manifest.json tests/baselines/smoke-manifest.json
echo "baseline refreshed: tests/baselines/smoke-manifest.json"

cargo run --release --offline -p pokemu-bench --bin pokemu-report -- \
    conformance --roms tests/roms --write
echo "baseline refreshed: tests/roms/"

cargo run --release --offline -q -p pokemu-bench --bin pokemu-bench -- \
    --write-baselines tests/baselines/bench
echo "baseline refreshed: tests/baselines/bench/"

# Fleet merged-manifest baseline (DESIGN.md §13): same workload and shard
# count as the ci.sh fleet gate. The merge is deterministic content only
# (timings and retry history live in fleet-events.jsonl), so the file is
# machine-independent.
rm -rf target/fleet/baseline
POKEMU_HISTORY=0 \
    cargo run --release --offline -p pokemu-bench --bin pokemu-fleet -- \
    run --run-id ci --root target/fleet/baseline --shards 2 --first-byte 0xf7 \
    --max-paths 64 --backoff-ms 10 >/dev/null
cp target/fleet/baseline/merged.json tests/baselines/fleet-merged.json
echo "baseline refreshed: tests/baselines/fleet-merged.json"

# Seed a fresh trend window (DESIGN.md §12): after an intentional change the
# old run-history records describe the previous behavior, so the trend gate
# would flag the new steady state as drift. Drop the local ledger and record
# two clean runs so `pokemu-report trend --check` starts from a passing
# window that reflects the refreshed baselines.
rm -rf target/history
POKEMU_PROF=1 POKEMU_RUN_ID=seed-a \
    cargo run --release --offline -p pokemu-bench --bin smoke-bench >/dev/null
POKEMU_PROF=1 POKEMU_RUN_ID=seed-b \
    cargo run --release --offline -p pokemu-bench --bin smoke-bench >/dev/null
cargo run --release --offline -p pokemu-bench --bin pokemu-report -- trend --check
echo "trend window reseeded: target/history/ledger.jsonl"
