#!/usr/bin/env bash
# Regenerates the committed CI baseline manifest from a fresh smoke run.
#
# One command: after an intentional coverage/cluster change, run this and
# commit the updated tests/baselines/smoke-manifest.json. The baseline's
# comparable sections (counts, coverage, clusters, deviations) are
# deterministic for the fixed smoke config, so the file is machine- and
# thread-count-independent; timings vary but are never compared.
set -euo pipefail
cd "$(dirname "$0")/.."

POKEMU_RUN_MANIFEST=1 POKEMU_RUN_ID=smoke \
    cargo run --release --offline -p pokemu-bench --bin smoke-bench
mkdir -p tests/baselines
cp target/run/smoke/manifest.json tests/baselines/smoke-manifest.json
echo "baseline refreshed: tests/baselines/smoke-manifest.json"
