/root/repo/target/debug/deps/smoke_bench-3430b6a855e6db95.d: crates/bench/src/bin/smoke-bench.rs

/root/repo/target/debug/deps/smoke_bench-3430b6a855e6db95: crates/bench/src/bin/smoke-bench.rs

crates/bench/src/bin/smoke-bench.rs:
