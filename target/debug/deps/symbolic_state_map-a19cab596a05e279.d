/root/repo/target/debug/deps/symbolic_state_map-a19cab596a05e279.d: crates/core/../../tests/symbolic_state_map.rs

/root/repo/target/debug/deps/symbolic_state_map-a19cab596a05e279: crates/core/../../tests/symbolic_state_map.rs

crates/core/../../tests/symbolic_state_map.rs:
