/root/repo/target/debug/deps/pokemu_symx-c466d48a882ca4fb.d: crates/symx/src/lib.rs crates/symx/src/dom.rs crates/symx/src/engine.rs crates/symx/src/minimize.rs crates/symx/src/summary.rs crates/symx/src/tree.rs

/root/repo/target/debug/deps/pokemu_symx-c466d48a882ca4fb: crates/symx/src/lib.rs crates/symx/src/dom.rs crates/symx/src/engine.rs crates/symx/src/minimize.rs crates/symx/src/summary.rs crates/symx/src/tree.rs

crates/symx/src/lib.rs:
crates/symx/src/dom.rs:
crates/symx/src/engine.rs:
crates/symx/src/minimize.rs:
crates/symx/src/summary.rs:
crates/symx/src/tree.rs:
