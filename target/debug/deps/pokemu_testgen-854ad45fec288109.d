/root/repo/target/debug/deps/pokemu_testgen-854ad45fec288109.d: crates/testgen/src/lib.rs crates/testgen/src/gadgets.rs crates/testgen/src/layout.rs crates/testgen/src/program.rs

/root/repo/target/debug/deps/pokemu_testgen-854ad45fec288109: crates/testgen/src/lib.rs crates/testgen/src/gadgets.rs crates/testgen/src/layout.rs crates/testgen/src/program.rs

crates/testgen/src/lib.rs:
crates/testgen/src/gadgets.rs:
crates/testgen/src/layout.rs:
crates/testgen/src/program.rs:
