/root/repo/target/debug/deps/pokemu_report-49371c0a79541a7f.d: crates/bench/src/bin/pokemu-report.rs

/root/repo/target/debug/deps/pokemu_report-49371c0a79541a7f: crates/bench/src/bin/pokemu-report.rs

crates/bench/src/bin/pokemu-report.rs:
