/root/repo/target/debug/deps/pokemu_explore-0fd9adb7e6505c4b.d: crates/explore/src/lib.rs crates/explore/src/insn_space.rs crates/explore/src/state_space.rs crates/explore/src/symstate.rs

/root/repo/target/debug/deps/libpokemu_explore-0fd9adb7e6505c4b.rlib: crates/explore/src/lib.rs crates/explore/src/insn_space.rs crates/explore/src/state_space.rs crates/explore/src/symstate.rs

/root/repo/target/debug/deps/libpokemu_explore-0fd9adb7e6505c4b.rmeta: crates/explore/src/lib.rs crates/explore/src/insn_space.rs crates/explore/src/state_space.rs crates/explore/src/symstate.rs

crates/explore/src/lib.rs:
crates/explore/src/insn_space.rs:
crates/explore/src/state_space.rs:
crates/explore/src/symstate.rs:
