/root/repo/target/debug/deps/root_cause_coverage-21cf364fa848a139.d: crates/core/../../tests/root_cause_coverage.rs

/root/repo/target/debug/deps/root_cause_coverage-21cf364fa848a139: crates/core/../../tests/root_cause_coverage.rs

crates/core/../../tests/root_cause_coverage.rs:
