/root/repo/target/debug/deps/prop_decode-29ab3bd4b93cc492.d: crates/isa/tests/prop_decode.rs

/root/repo/target/debug/deps/prop_decode-29ab3bd4b93cc492: crates/isa/tests/prop_decode.rs

crates/isa/tests/prop_decode.rs:
