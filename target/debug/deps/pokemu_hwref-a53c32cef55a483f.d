/root/repo/target/debug/deps/pokemu_hwref-a53c32cef55a483f.d: crates/hwref/src/lib.rs

/root/repo/target/debug/deps/libpokemu_hwref-a53c32cef55a483f.rlib: crates/hwref/src/lib.rs

/root/repo/target/debug/deps/libpokemu_hwref-a53c32cef55a483f.rmeta: crates/hwref/src/lib.rs

crates/hwref/src/lib.rs:
