/root/repo/target/debug/deps/pokemu_rt-b7ad77736a0459fe.d: crates/rt/src/lib.rs crates/rt/src/bench.rs crates/rt/src/json.rs crates/rt/src/metrics.rs crates/rt/src/pool.rs crates/rt/src/prop.rs crates/rt/src/rng.rs crates/rt/src/trace.rs

/root/repo/target/debug/deps/libpokemu_rt-b7ad77736a0459fe.rlib: crates/rt/src/lib.rs crates/rt/src/bench.rs crates/rt/src/json.rs crates/rt/src/metrics.rs crates/rt/src/pool.rs crates/rt/src/prop.rs crates/rt/src/rng.rs crates/rt/src/trace.rs

/root/repo/target/debug/deps/libpokemu_rt-b7ad77736a0459fe.rmeta: crates/rt/src/lib.rs crates/rt/src/bench.rs crates/rt/src/json.rs crates/rt/src/metrics.rs crates/rt/src/pool.rs crates/rt/src/prop.rs crates/rt/src/rng.rs crates/rt/src/trace.rs

crates/rt/src/lib.rs:
crates/rt/src/bench.rs:
crates/rt/src/json.rs:
crates/rt/src/metrics.rs:
crates/rt/src/pool.rs:
crates/rt/src/prop.rs:
crates/rt/src/rng.rs:
crates/rt/src/trace.rs:
