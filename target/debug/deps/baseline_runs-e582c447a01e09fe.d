/root/repo/target/debug/deps/baseline_runs-e582c447a01e09fe.d: crates/testgen/tests/baseline_runs.rs

/root/repo/target/debug/deps/baseline_runs-e582c447a01e09fe: crates/testgen/tests/baseline_runs.rs

crates/testgen/tests/baseline_runs.rs:
