/root/repo/target/debug/deps/e3_cross_validation-63e5546a71d3489d.d: crates/bench/benches/e3_cross_validation.rs

/root/repo/target/debug/deps/e3_cross_validation-63e5546a71d3489d: crates/bench/benches/e3_cross_validation.rs

crates/bench/benches/e3_cross_validation.rs:
