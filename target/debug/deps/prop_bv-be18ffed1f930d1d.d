/root/repo/target/debug/deps/prop_bv-be18ffed1f930d1d.d: crates/solver/tests/prop_bv.rs

/root/repo/target/debug/deps/prop_bv-be18ffed1f930d1d: crates/solver/tests/prop_bv.rs

crates/solver/tests/prop_bv.rs:
