/root/repo/target/debug/deps/pokemu_harness-d08d1a4ddbafc968.d: crates/harness/src/lib.rs crates/harness/src/compare.rs crates/harness/src/pipeline.rs crates/harness/src/random.rs crates/harness/src/targets.rs

/root/repo/target/debug/deps/libpokemu_harness-d08d1a4ddbafc968.rlib: crates/harness/src/lib.rs crates/harness/src/compare.rs crates/harness/src/pipeline.rs crates/harness/src/random.rs crates/harness/src/targets.rs

/root/repo/target/debug/deps/libpokemu_harness-d08d1a4ddbafc968.rmeta: crates/harness/src/lib.rs crates/harness/src/compare.rs crates/harness/src/pipeline.rs crates/harness/src/random.rs crates/harness/src/targets.rs

crates/harness/src/lib.rs:
crates/harness/src/compare.rs:
crates/harness/src/pipeline.rs:
crates/harness/src/random.rs:
crates/harness/src/targets.rs:
