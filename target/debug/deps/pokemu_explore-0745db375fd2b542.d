/root/repo/target/debug/deps/pokemu_explore-0745db375fd2b542.d: crates/explore/src/lib.rs crates/explore/src/insn_space.rs crates/explore/src/state_space.rs crates/explore/src/symstate.rs

/root/repo/target/debug/deps/pokemu_explore-0745db375fd2b542: crates/explore/src/lib.rs crates/explore/src/insn_space.rs crates/explore/src/state_space.rs crates/explore/src/symstate.rs

crates/explore/src/lib.rs:
crates/explore/src/insn_space.rs:
crates/explore/src/state_space.rs:
crates/explore/src/symstate.rs:
