/root/repo/target/debug/deps/pokemu_hifi-de925433354736ed.d: crates/hifi/src/lib.rs

/root/repo/target/debug/deps/pokemu_hifi-de925433354736ed: crates/hifi/src/lib.rs

crates/hifi/src/lib.rs:
