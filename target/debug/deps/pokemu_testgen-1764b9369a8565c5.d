/root/repo/target/debug/deps/pokemu_testgen-1764b9369a8565c5.d: crates/testgen/src/lib.rs crates/testgen/src/gadgets.rs crates/testgen/src/layout.rs crates/testgen/src/program.rs

/root/repo/target/debug/deps/libpokemu_testgen-1764b9369a8565c5.rlib: crates/testgen/src/lib.rs crates/testgen/src/gadgets.rs crates/testgen/src/layout.rs crates/testgen/src/program.rs

/root/repo/target/debug/deps/libpokemu_testgen-1764b9369a8565c5.rmeta: crates/testgen/src/lib.rs crates/testgen/src/gadgets.rs crates/testgen/src/layout.rs crates/testgen/src/program.rs

crates/testgen/src/lib.rs:
crates/testgen/src/gadgets.rs:
crates/testgen/src/layout.rs:
crates/testgen/src/program.rs:
