/root/repo/target/debug/deps/pokemu_explore-0d6c990c2d273213.d: crates/explore/src/lib.rs crates/explore/src/insn_space.rs crates/explore/src/state_space.rs crates/explore/src/symstate.rs

/root/repo/target/debug/deps/pokemu_explore-0d6c990c2d273213: crates/explore/src/lib.rs crates/explore/src/insn_space.rs crates/explore/src/state_space.rs crates/explore/src/symstate.rs

crates/explore/src/lib.rs:
crates/explore/src/insn_space.rs:
crates/explore/src/state_space.rs:
crates/explore/src/symstate.rs:
