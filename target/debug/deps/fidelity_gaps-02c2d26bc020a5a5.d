/root/repo/target/debug/deps/fidelity_gaps-02c2d26bc020a5a5.d: crates/lofi/tests/fidelity_gaps.rs

/root/repo/target/debug/deps/fidelity_gaps-02c2d26bc020a5a5: crates/lofi/tests/fidelity_gaps.rs

crates/lofi/tests/fidelity_gaps.rs:
