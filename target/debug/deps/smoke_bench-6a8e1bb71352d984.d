/root/repo/target/debug/deps/smoke_bench-6a8e1bb71352d984.d: crates/bench/src/bin/smoke-bench.rs

/root/repo/target/debug/deps/smoke_bench-6a8e1bb71352d984: crates/bench/src/bin/smoke-bench.rs

crates/bench/src/bin/smoke-bench.rs:
