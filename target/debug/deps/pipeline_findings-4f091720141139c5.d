/root/repo/target/debug/deps/pipeline_findings-4f091720141139c5.d: crates/core/../../tests/pipeline_findings.rs

/root/repo/target/debug/deps/pipeline_findings-4f091720141139c5: crates/core/../../tests/pipeline_findings.rs

crates/core/../../tests/pipeline_findings.rs:
