/root/repo/target/debug/deps/pokemu_hwref-64a84f1aec395c3f.d: crates/hwref/src/lib.rs

/root/repo/target/debug/deps/libpokemu_hwref-64a84f1aec395c3f.rlib: crates/hwref/src/lib.rs

/root/repo/target/debug/deps/libpokemu_hwref-64a84f1aec395c3f.rmeta: crates/hwref/src/lib.rs

crates/hwref/src/lib.rs:
