/root/repo/target/debug/deps/pokemu_bench-2ff7867c1444e1d2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/pokemu_bench-2ff7867c1444e1d2: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
