/root/repo/target/debug/deps/pokemu_rt-25516e60a5b5e1b8.d: crates/rt/src/lib.rs crates/rt/src/bench.rs crates/rt/src/json.rs crates/rt/src/metrics.rs crates/rt/src/pool.rs crates/rt/src/prop.rs crates/rt/src/rng.rs crates/rt/src/trace.rs

/root/repo/target/debug/deps/pokemu_rt-25516e60a5b5e1b8: crates/rt/src/lib.rs crates/rt/src/bench.rs crates/rt/src/json.rs crates/rt/src/metrics.rs crates/rt/src/pool.rs crates/rt/src/prop.rs crates/rt/src/rng.rs crates/rt/src/trace.rs

crates/rt/src/lib.rs:
crates/rt/src/bench.rs:
crates/rt/src/json.rs:
crates/rt/src/metrics.rs:
crates/rt/src/pool.rs:
crates/rt/src/prop.rs:
crates/rt/src/rng.rs:
crates/rt/src/trace.rs:
