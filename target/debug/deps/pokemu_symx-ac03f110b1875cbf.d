/root/repo/target/debug/deps/pokemu_symx-ac03f110b1875cbf.d: crates/symx/src/lib.rs crates/symx/src/dom.rs crates/symx/src/engine.rs crates/symx/src/minimize.rs crates/symx/src/summary.rs crates/symx/src/tree.rs

/root/repo/target/debug/deps/pokemu_symx-ac03f110b1875cbf: crates/symx/src/lib.rs crates/symx/src/dom.rs crates/symx/src/engine.rs crates/symx/src/minimize.rs crates/symx/src/summary.rs crates/symx/src/tree.rs

crates/symx/src/lib.rs:
crates/symx/src/dom.rs:
crates/symx/src/engine.rs:
crates/symx/src/minimize.rs:
crates/symx/src/summary.rs:
crates/symx/src/tree.rs:
