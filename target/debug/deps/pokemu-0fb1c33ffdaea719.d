/root/repo/target/debug/deps/pokemu-0fb1c33ffdaea719.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/libpokemu-0fb1c33ffdaea719.rlib: crates/core/src/lib.rs

/root/repo/target/debug/deps/libpokemu-0fb1c33ffdaea719.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
