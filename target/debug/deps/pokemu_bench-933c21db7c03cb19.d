/root/repo/target/debug/deps/pokemu_bench-933c21db7c03cb19.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpokemu_bench-933c21db7c03cb19.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpokemu_bench-933c21db7c03cb19.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
