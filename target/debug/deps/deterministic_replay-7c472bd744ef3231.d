/root/repo/target/debug/deps/deterministic_replay-7c472bd744ef3231.d: crates/core/../../tests/deterministic_replay.rs

/root/repo/target/debug/deps/deterministic_replay-7c472bd744ef3231: crates/core/../../tests/deterministic_replay.rs

crates/core/../../tests/deterministic_replay.rs:
