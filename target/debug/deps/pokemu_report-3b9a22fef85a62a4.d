/root/repo/target/debug/deps/pokemu_report-3b9a22fef85a62a4.d: crates/bench/src/bin/pokemu-report.rs

/root/repo/target/debug/deps/pokemu_report-3b9a22fef85a62a4: crates/bench/src/bin/pokemu-report.rs

crates/bench/src/bin/pokemu-report.rs:
