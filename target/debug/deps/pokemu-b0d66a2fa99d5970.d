/root/repo/target/debug/deps/pokemu-b0d66a2fa99d5970.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/pokemu-b0d66a2fa99d5970: crates/core/src/lib.rs

crates/core/src/lib.rs:
