/root/repo/target/debug/deps/interp_exec-9fabbfd441ec4c5b.d: crates/isa/tests/interp_exec.rs

/root/repo/target/debug/deps/interp_exec-9fabbfd441ec4c5b: crates/isa/tests/interp_exec.rs

crates/isa/tests/interp_exec.rs:
