/root/repo/target/debug/deps/differential_smoke-fe33fb2e27fdb00f.d: crates/core/../../tests/differential_smoke.rs

/root/repo/target/debug/deps/differential_smoke-fe33fb2e27fdb00f: crates/core/../../tests/differential_smoke.rs

crates/core/../../tests/differential_smoke.rs:
