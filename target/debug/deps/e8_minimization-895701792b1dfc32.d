/root/repo/target/debug/deps/e8_minimization-895701792b1dfc32.d: crates/bench/benches/e8_minimization.rs

/root/repo/target/debug/deps/e8_minimization-895701792b1dfc32: crates/bench/benches/e8_minimization.rs

crates/bench/benches/e8_minimization.rs:
