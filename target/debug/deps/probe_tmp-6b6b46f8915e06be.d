/root/repo/target/debug/deps/probe_tmp-6b6b46f8915e06be.d: crates/core/../../tests/probe_tmp.rs

/root/repo/target/debug/deps/probe_tmp-6b6b46f8915e06be: crates/core/../../tests/probe_tmp.rs

crates/core/../../tests/probe_tmp.rs:
