/root/repo/target/debug/deps/e5_random_vs_lifting-01ca45450b143a8e.d: crates/bench/benches/e5_random_vs_lifting.rs

/root/repo/target/debug/deps/e5_random_vs_lifting-01ca45450b143a8e: crates/bench/benches/e5_random_vs_lifting.rs

crates/bench/benches/e5_random_vs_lifting.rs:
