/root/repo/target/debug/deps/prop_exploration-787d1b9a6d41afe7.d: crates/symx/tests/prop_exploration.rs

/root/repo/target/debug/deps/prop_exploration-787d1b9a6d41afe7: crates/symx/tests/prop_exploration.rs

crates/symx/tests/prop_exploration.rs:
