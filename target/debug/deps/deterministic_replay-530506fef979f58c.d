/root/repo/target/debug/deps/deterministic_replay-530506fef979f58c.d: crates/core/../../tests/deterministic_replay.rs

/root/repo/target/debug/deps/deterministic_replay-530506fef979f58c: crates/core/../../tests/deterministic_replay.rs

crates/core/../../tests/deterministic_replay.rs:
