/root/repo/target/debug/deps/e6_cost_breakdown-cc2a4737e590e30c.d: crates/bench/benches/e6_cost_breakdown.rs

/root/repo/target/debug/deps/e6_cost_breakdown-cc2a4737e590e30c: crates/bench/benches/e6_cost_breakdown.rs

crates/bench/benches/e6_cost_breakdown.rs:
