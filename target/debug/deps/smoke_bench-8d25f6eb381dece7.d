/root/repo/target/debug/deps/smoke_bench-8d25f6eb381dece7.d: crates/bench/src/bin/smoke-bench.rs

/root/repo/target/debug/deps/smoke_bench-8d25f6eb381dece7: crates/bench/src/bin/smoke-bench.rs

crates/bench/src/bin/smoke-bench.rs:
