/root/repo/target/debug/deps/pokemu_testgen-96c0da9db68d4fac.d: crates/testgen/src/lib.rs crates/testgen/src/gadgets.rs crates/testgen/src/layout.rs crates/testgen/src/program.rs

/root/repo/target/debug/deps/pokemu_testgen-96c0da9db68d4fac: crates/testgen/src/lib.rs crates/testgen/src/gadgets.rs crates/testgen/src/layout.rs crates/testgen/src/program.rs

crates/testgen/src/lib.rs:
crates/testgen/src/gadgets.rs:
crates/testgen/src/layout.rs:
crates/testgen/src/program.rs:
