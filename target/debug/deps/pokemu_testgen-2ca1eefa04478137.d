/root/repo/target/debug/deps/pokemu_testgen-2ca1eefa04478137.d: crates/testgen/src/lib.rs crates/testgen/src/gadgets.rs crates/testgen/src/layout.rs crates/testgen/src/program.rs

/root/repo/target/debug/deps/libpokemu_testgen-2ca1eefa04478137.rlib: crates/testgen/src/lib.rs crates/testgen/src/gadgets.rs crates/testgen/src/layout.rs crates/testgen/src/program.rs

/root/repo/target/debug/deps/libpokemu_testgen-2ca1eefa04478137.rmeta: crates/testgen/src/lib.rs crates/testgen/src/gadgets.rs crates/testgen/src/layout.rs crates/testgen/src/program.rs

crates/testgen/src/lib.rs:
crates/testgen/src/gadgets.rs:
crates/testgen/src/layout.rs:
crates/testgen/src/program.rs:
