/root/repo/target/debug/deps/e7_summarization-a861b9d36ecb4418.d: crates/bench/benches/e7_summarization.rs

/root/repo/target/debug/deps/e7_summarization-a861b9d36ecb4418: crates/bench/benches/e7_summarization.rs

crates/bench/benches/e7_summarization.rs:
