/root/repo/target/debug/deps/interp_exec-482ea92e22288973.d: crates/isa/tests/interp_exec.rs

/root/repo/target/debug/deps/interp_exec-482ea92e22288973: crates/isa/tests/interp_exec.rs

crates/isa/tests/interp_exec.rs:
