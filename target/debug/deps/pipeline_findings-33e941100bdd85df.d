/root/repo/target/debug/deps/pipeline_findings-33e941100bdd85df.d: crates/core/../../tests/pipeline_findings.rs

/root/repo/target/debug/deps/pipeline_findings-33e941100bdd85df: crates/core/../../tests/pipeline_findings.rs

crates/core/../../tests/pipeline_findings.rs:
