/root/repo/target/debug/deps/smoke_bench-4ebec663f944a3ef.d: crates/bench/src/bin/smoke-bench.rs

/root/repo/target/debug/deps/smoke_bench-4ebec663f944a3ef: crates/bench/src/bin/smoke-bench.rs

crates/bench/src/bin/smoke-bench.rs:
