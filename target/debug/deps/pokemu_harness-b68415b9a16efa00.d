/root/repo/target/debug/deps/pokemu_harness-b68415b9a16efa00.d: crates/harness/src/lib.rs crates/harness/src/compare.rs crates/harness/src/pipeline.rs crates/harness/src/random.rs crates/harness/src/targets.rs

/root/repo/target/debug/deps/pokemu_harness-b68415b9a16efa00: crates/harness/src/lib.rs crates/harness/src/compare.rs crates/harness/src/pipeline.rs crates/harness/src/random.rs crates/harness/src/targets.rs

crates/harness/src/lib.rs:
crates/harness/src/compare.rs:
crates/harness/src/pipeline.rs:
crates/harness/src/random.rs:
crates/harness/src/targets.rs:
