/root/repo/target/debug/deps/diff_vs_reference-2160b4109862fa7e.d: crates/lofi/tests/diff_vs_reference.rs

/root/repo/target/debug/deps/diff_vs_reference-2160b4109862fa7e: crates/lofi/tests/diff_vs_reference.rs

crates/lofi/tests/diff_vs_reference.rs:
