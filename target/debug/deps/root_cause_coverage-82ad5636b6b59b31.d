/root/repo/target/debug/deps/root_cause_coverage-82ad5636b6b59b31.d: crates/core/../../tests/root_cause_coverage.rs

/root/repo/target/debug/deps/root_cause_coverage-82ad5636b6b59b31: crates/core/../../tests/root_cause_coverage.rs

crates/core/../../tests/root_cause_coverage.rs:
