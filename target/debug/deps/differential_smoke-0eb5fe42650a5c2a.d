/root/repo/target/debug/deps/differential_smoke-0eb5fe42650a5c2a.d: crates/core/../../tests/differential_smoke.rs

/root/repo/target/debug/deps/differential_smoke-0eb5fe42650a5c2a: crates/core/../../tests/differential_smoke.rs

crates/core/../../tests/differential_smoke.rs:
