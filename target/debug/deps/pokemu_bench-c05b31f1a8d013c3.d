/root/repo/target/debug/deps/pokemu_bench-c05b31f1a8d013c3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpokemu_bench-c05b31f1a8d013c3.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpokemu_bench-c05b31f1a8d013c3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
