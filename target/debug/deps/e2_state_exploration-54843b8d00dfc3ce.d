/root/repo/target/debug/deps/e2_state_exploration-54843b8d00dfc3ce.d: crates/bench/benches/e2_state_exploration.rs

/root/repo/target/debug/deps/e2_state_exploration-54843b8d00dfc3ce: crates/bench/benches/e2_state_exploration.rs

crates/bench/benches/e2_state_exploration.rs:
