/root/repo/target/debug/deps/pokemu_hifi-5e71a6a95d9b0e2a.d: crates/hifi/src/lib.rs

/root/repo/target/debug/deps/pokemu_hifi-5e71a6a95d9b0e2a: crates/hifi/src/lib.rs

crates/hifi/src/lib.rs:
