/root/repo/target/debug/deps/pokemu_hwref-447fa414a058cd3b.d: crates/hwref/src/lib.rs

/root/repo/target/debug/deps/pokemu_hwref-447fa414a058cd3b: crates/hwref/src/lib.rs

crates/hwref/src/lib.rs:
