/root/repo/target/debug/deps/pokemu-50db80d725f95597.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/pokemu-50db80d725f95597: crates/core/src/lib.rs

crates/core/src/lib.rs:
