/root/repo/target/debug/deps/prop_bv-2318305c2cab1681.d: crates/solver/tests/prop_bv.rs

/root/repo/target/debug/deps/prop_bv-2318305c2cab1681: crates/solver/tests/prop_bv.rs

crates/solver/tests/prop_bv.rs:
