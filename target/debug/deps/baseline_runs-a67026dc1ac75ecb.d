/root/repo/target/debug/deps/baseline_runs-a67026dc1ac75ecb.d: crates/testgen/tests/baseline_runs.rs

/root/repo/target/debug/deps/baseline_runs-a67026dc1ac75ecb: crates/testgen/tests/baseline_runs.rs

crates/testgen/tests/baseline_runs.rs:
