/root/repo/target/debug/deps/prop_decode-516de56b96183a42.d: crates/isa/tests/prop_decode.rs

/root/repo/target/debug/deps/prop_decode-516de56b96183a42: crates/isa/tests/prop_decode.rs

crates/isa/tests/prop_decode.rs:
