/root/repo/target/debug/deps/pokemu_bench-c8705d0f2a2f68d7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/pokemu_bench-c8705d0f2a2f68d7: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
