/root/repo/target/debug/deps/prop_exploration-e9ba3e0db3ec08a9.d: crates/symx/tests/prop_exploration.rs

/root/repo/target/debug/deps/prop_exploration-e9ba3e0db3ec08a9: crates/symx/tests/prop_exploration.rs

crates/symx/tests/prop_exploration.rs:
