/root/repo/target/debug/deps/pokemu_solver-4f60b185594b61f4.d: crates/solver/src/lib.rs crates/solver/src/blast.rs crates/solver/src/sat.rs crates/solver/src/solver.rs crates/solver/src/term.rs

/root/repo/target/debug/deps/libpokemu_solver-4f60b185594b61f4.rlib: crates/solver/src/lib.rs crates/solver/src/blast.rs crates/solver/src/sat.rs crates/solver/src/solver.rs crates/solver/src/term.rs

/root/repo/target/debug/deps/libpokemu_solver-4f60b185594b61f4.rmeta: crates/solver/src/lib.rs crates/solver/src/blast.rs crates/solver/src/sat.rs crates/solver/src/solver.rs crates/solver/src/term.rs

crates/solver/src/lib.rs:
crates/solver/src/blast.rs:
crates/solver/src/sat.rs:
crates/solver/src/solver.rs:
crates/solver/src/term.rs:
