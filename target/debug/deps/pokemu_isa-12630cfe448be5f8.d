/root/repo/target/debug/deps/pokemu_isa-12630cfe448be5f8.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/decode.rs crates/isa/src/flags.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/interp/exec_arith.rs crates/isa/src/interp/exec_control.rs crates/isa/src/interp/exec_data.rs crates/isa/src/interp/exec_system.rs crates/isa/src/mem.rs crates/isa/src/snapshot.rs crates/isa/src/state.rs crates/isa/src/translate.rs

/root/repo/target/debug/deps/libpokemu_isa-12630cfe448be5f8.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/decode.rs crates/isa/src/flags.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/interp/exec_arith.rs crates/isa/src/interp/exec_control.rs crates/isa/src/interp/exec_data.rs crates/isa/src/interp/exec_system.rs crates/isa/src/mem.rs crates/isa/src/snapshot.rs crates/isa/src/state.rs crates/isa/src/translate.rs

/root/repo/target/debug/deps/libpokemu_isa-12630cfe448be5f8.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/decode.rs crates/isa/src/flags.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/interp/exec_arith.rs crates/isa/src/interp/exec_control.rs crates/isa/src/interp/exec_data.rs crates/isa/src/interp/exec_system.rs crates/isa/src/mem.rs crates/isa/src/snapshot.rs crates/isa/src/state.rs crates/isa/src/translate.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/decode.rs:
crates/isa/src/flags.rs:
crates/isa/src/inst.rs:
crates/isa/src/interp.rs:
crates/isa/src/interp/exec_arith.rs:
crates/isa/src/interp/exec_control.rs:
crates/isa/src/interp/exec_data.rs:
crates/isa/src/interp/exec_system.rs:
crates/isa/src/mem.rs:
crates/isa/src/snapshot.rs:
crates/isa/src/state.rs:
crates/isa/src/translate.rs:
