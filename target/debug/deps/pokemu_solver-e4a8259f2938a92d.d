/root/repo/target/debug/deps/pokemu_solver-e4a8259f2938a92d.d: crates/solver/src/lib.rs crates/solver/src/blast.rs crates/solver/src/sat.rs crates/solver/src/solver.rs crates/solver/src/term.rs

/root/repo/target/debug/deps/pokemu_solver-e4a8259f2938a92d: crates/solver/src/lib.rs crates/solver/src/blast.rs crates/solver/src/sat.rs crates/solver/src/solver.rs crates/solver/src/term.rs

crates/solver/src/lib.rs:
crates/solver/src/blast.rs:
crates/solver/src/sat.rs:
crates/solver/src/solver.rs:
crates/solver/src/term.rs:
