/root/repo/target/debug/deps/pokemu-74756a186b70355d.d: crates/core/src/lib.rs

/root/repo/target/debug/deps/libpokemu-74756a186b70355d.rlib: crates/core/src/lib.rs

/root/repo/target/debug/deps/libpokemu-74756a186b70355d.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
