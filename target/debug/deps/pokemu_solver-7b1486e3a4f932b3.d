/root/repo/target/debug/deps/pokemu_solver-7b1486e3a4f932b3.d: crates/solver/src/lib.rs crates/solver/src/blast.rs crates/solver/src/sat.rs crates/solver/src/solver.rs crates/solver/src/term.rs

/root/repo/target/debug/deps/libpokemu_solver-7b1486e3a4f932b3.rlib: crates/solver/src/lib.rs crates/solver/src/blast.rs crates/solver/src/sat.rs crates/solver/src/solver.rs crates/solver/src/term.rs

/root/repo/target/debug/deps/libpokemu_solver-7b1486e3a4f932b3.rmeta: crates/solver/src/lib.rs crates/solver/src/blast.rs crates/solver/src/sat.rs crates/solver/src/solver.rs crates/solver/src/term.rs

crates/solver/src/lib.rs:
crates/solver/src/blast.rs:
crates/solver/src/sat.rs:
crates/solver/src/solver.rs:
crates/solver/src/term.rs:
