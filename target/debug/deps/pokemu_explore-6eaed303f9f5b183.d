/root/repo/target/debug/deps/pokemu_explore-6eaed303f9f5b183.d: crates/explore/src/lib.rs crates/explore/src/insn_space.rs crates/explore/src/state_space.rs crates/explore/src/symstate.rs

/root/repo/target/debug/deps/libpokemu_explore-6eaed303f9f5b183.rlib: crates/explore/src/lib.rs crates/explore/src/insn_space.rs crates/explore/src/state_space.rs crates/explore/src/symstate.rs

/root/repo/target/debug/deps/libpokemu_explore-6eaed303f9f5b183.rmeta: crates/explore/src/lib.rs crates/explore/src/insn_space.rs crates/explore/src/state_space.rs crates/explore/src/symstate.rs

crates/explore/src/lib.rs:
crates/explore/src/insn_space.rs:
crates/explore/src/state_space.rs:
crates/explore/src/symstate.rs:
