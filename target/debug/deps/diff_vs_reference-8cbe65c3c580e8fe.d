/root/repo/target/debug/deps/diff_vs_reference-8cbe65c3c580e8fe.d: crates/lofi/tests/diff_vs_reference.rs

/root/repo/target/debug/deps/diff_vs_reference-8cbe65c3c580e8fe: crates/lofi/tests/diff_vs_reference.rs

crates/lofi/tests/diff_vs_reference.rs:
