/root/repo/target/debug/deps/pokemu_hifi-7ea138f18aed890d.d: crates/hifi/src/lib.rs

/root/repo/target/debug/deps/libpokemu_hifi-7ea138f18aed890d.rlib: crates/hifi/src/lib.rs

/root/repo/target/debug/deps/libpokemu_hifi-7ea138f18aed890d.rmeta: crates/hifi/src/lib.rs

crates/hifi/src/lib.rs:
