/root/repo/target/debug/deps/symbolic_state_map-ff02714b128fc4f3.d: crates/core/../../tests/symbolic_state_map.rs

/root/repo/target/debug/deps/symbolic_state_map-ff02714b128fc4f3: crates/core/../../tests/symbolic_state_map.rs

crates/core/../../tests/symbolic_state_map.rs:
