/root/repo/target/debug/deps/e1_insn_exploration-506bee3f24028fa0.d: crates/bench/benches/e1_insn_exploration.rs

/root/repo/target/debug/deps/e1_insn_exploration-506bee3f24028fa0: crates/bench/benches/e1_insn_exploration.rs

crates/bench/benches/e1_insn_exploration.rs:
