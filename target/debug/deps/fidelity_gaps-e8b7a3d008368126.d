/root/repo/target/debug/deps/fidelity_gaps-e8b7a3d008368126.d: crates/lofi/tests/fidelity_gaps.rs

/root/repo/target/debug/deps/fidelity_gaps-e8b7a3d008368126: crates/lofi/tests/fidelity_gaps.rs

crates/lofi/tests/fidelity_gaps.rs:
