/root/repo/target/debug/deps/pokemu_lofi-fd13399211e3a763.d: crates/lofi/src/lib.rs crates/lofi/src/exec.rs crates/lofi/src/mmu.rs crates/lofi/src/state.rs crates/lofi/src/translate.rs crates/lofi/src/uop.rs

/root/repo/target/debug/deps/pokemu_lofi-fd13399211e3a763: crates/lofi/src/lib.rs crates/lofi/src/exec.rs crates/lofi/src/mmu.rs crates/lofi/src/state.rs crates/lofi/src/translate.rs crates/lofi/src/uop.rs

crates/lofi/src/lib.rs:
crates/lofi/src/exec.rs:
crates/lofi/src/mmu.rs:
crates/lofi/src/state.rs:
crates/lofi/src/translate.rs:
crates/lofi/src/uop.rs:
