/root/repo/target/debug/deps/pokemu_symx-ff2a226efab2548b.d: crates/symx/src/lib.rs crates/symx/src/dom.rs crates/symx/src/engine.rs crates/symx/src/minimize.rs crates/symx/src/summary.rs crates/symx/src/tree.rs

/root/repo/target/debug/deps/libpokemu_symx-ff2a226efab2548b.rlib: crates/symx/src/lib.rs crates/symx/src/dom.rs crates/symx/src/engine.rs crates/symx/src/minimize.rs crates/symx/src/summary.rs crates/symx/src/tree.rs

/root/repo/target/debug/deps/libpokemu_symx-ff2a226efab2548b.rmeta: crates/symx/src/lib.rs crates/symx/src/dom.rs crates/symx/src/engine.rs crates/symx/src/minimize.rs crates/symx/src/summary.rs crates/symx/src/tree.rs

crates/symx/src/lib.rs:
crates/symx/src/dom.rs:
crates/symx/src/engine.rs:
crates/symx/src/minimize.rs:
crates/symx/src/summary.rs:
crates/symx/src/tree.rs:
