/root/repo/target/debug/deps/pokemu_symx-8c1e35e686cebbc9.d: crates/symx/src/lib.rs crates/symx/src/dom.rs crates/symx/src/engine.rs crates/symx/src/minimize.rs crates/symx/src/summary.rs crates/symx/src/tree.rs

/root/repo/target/debug/deps/libpokemu_symx-8c1e35e686cebbc9.rlib: crates/symx/src/lib.rs crates/symx/src/dom.rs crates/symx/src/engine.rs crates/symx/src/minimize.rs crates/symx/src/summary.rs crates/symx/src/tree.rs

/root/repo/target/debug/deps/libpokemu_symx-8c1e35e686cebbc9.rmeta: crates/symx/src/lib.rs crates/symx/src/dom.rs crates/symx/src/engine.rs crates/symx/src/minimize.rs crates/symx/src/summary.rs crates/symx/src/tree.rs

crates/symx/src/lib.rs:
crates/symx/src/dom.rs:
crates/symx/src/engine.rs:
crates/symx/src/minimize.rs:
crates/symx/src/summary.rs:
crates/symx/src/tree.rs:
