/root/repo/target/debug/deps/pokemu_lofi-ecd1e763b035cff7.d: crates/lofi/src/lib.rs crates/lofi/src/exec.rs crates/lofi/src/mmu.rs crates/lofi/src/state.rs crates/lofi/src/translate.rs crates/lofi/src/uop.rs

/root/repo/target/debug/deps/libpokemu_lofi-ecd1e763b035cff7.rlib: crates/lofi/src/lib.rs crates/lofi/src/exec.rs crates/lofi/src/mmu.rs crates/lofi/src/state.rs crates/lofi/src/translate.rs crates/lofi/src/uop.rs

/root/repo/target/debug/deps/libpokemu_lofi-ecd1e763b035cff7.rmeta: crates/lofi/src/lib.rs crates/lofi/src/exec.rs crates/lofi/src/mmu.rs crates/lofi/src/state.rs crates/lofi/src/translate.rs crates/lofi/src/uop.rs

crates/lofi/src/lib.rs:
crates/lofi/src/exec.rs:
crates/lofi/src/mmu.rs:
crates/lofi/src/state.rs:
crates/lofi/src/translate.rs:
crates/lofi/src/uop.rs:
