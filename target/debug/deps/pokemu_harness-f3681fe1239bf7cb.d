/root/repo/target/debug/deps/pokemu_harness-f3681fe1239bf7cb.d: crates/harness/src/lib.rs crates/harness/src/compare.rs crates/harness/src/pipeline.rs crates/harness/src/random.rs crates/harness/src/targets.rs

/root/repo/target/debug/deps/libpokemu_harness-f3681fe1239bf7cb.rlib: crates/harness/src/lib.rs crates/harness/src/compare.rs crates/harness/src/pipeline.rs crates/harness/src/random.rs crates/harness/src/targets.rs

/root/repo/target/debug/deps/libpokemu_harness-f3681fe1239bf7cb.rmeta: crates/harness/src/lib.rs crates/harness/src/compare.rs crates/harness/src/pipeline.rs crates/harness/src/random.rs crates/harness/src/targets.rs

crates/harness/src/lib.rs:
crates/harness/src/compare.rs:
crates/harness/src/pipeline.rs:
crates/harness/src/random.rs:
crates/harness/src/targets.rs:
