/root/repo/target/debug/deps/pokemu_hwref-534427e082d1d98b.d: crates/hwref/src/lib.rs

/root/repo/target/debug/deps/pokemu_hwref-534427e082d1d98b: crates/hwref/src/lib.rs

crates/hwref/src/lib.rs:
