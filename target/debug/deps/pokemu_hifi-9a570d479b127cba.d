/root/repo/target/debug/deps/pokemu_hifi-9a570d479b127cba.d: crates/hifi/src/lib.rs

/root/repo/target/debug/deps/libpokemu_hifi-9a570d479b127cba.rlib: crates/hifi/src/lib.rs

/root/repo/target/debug/deps/libpokemu_hifi-9a570d479b127cba.rmeta: crates/hifi/src/lib.rs

crates/hifi/src/lib.rs:
