/root/repo/target/debug/deps/a1_fidelity_ablation-fd5914fcc079cc09.d: crates/bench/benches/a1_fidelity_ablation.rs

/root/repo/target/debug/deps/a1_fidelity_ablation-fd5914fcc079cc09: crates/bench/benches/a1_fidelity_ablation.rs

crates/bench/benches/a1_fidelity_ablation.rs:
