/root/repo/target/debug/examples/bughunt-4a04c6ad6f4ea4a0.d: crates/core/../../examples/bughunt.rs

/root/repo/target/debug/examples/bughunt-4a04c6ad6f4ea4a0: crates/core/../../examples/bughunt.rs

crates/core/../../examples/bughunt.rs:
