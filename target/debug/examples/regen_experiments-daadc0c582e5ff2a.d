/root/repo/target/debug/examples/regen_experiments-daadc0c582e5ff2a.d: crates/core/../../examples/regen_experiments.rs

/root/repo/target/debug/examples/regen_experiments-daadc0c582e5ff2a: crates/core/../../examples/regen_experiments.rs

crates/core/../../examples/regen_experiments.rs:
