/root/repo/target/debug/examples/quickstart-c9f6ae44e0de73af.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c9f6ae44e0de73af: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
