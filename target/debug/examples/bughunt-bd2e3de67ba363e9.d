/root/repo/target/debug/examples/bughunt-bd2e3de67ba363e9.d: crates/core/../../examples/bughunt.rs

/root/repo/target/debug/examples/bughunt-bd2e3de67ba363e9: crates/core/../../examples/bughunt.rs

crates/core/../../examples/bughunt.rs:
