/root/repo/target/debug/examples/sample_testcase-09f6b9d4da98adbb.d: crates/core/../../examples/sample_testcase.rs

/root/repo/target/debug/examples/sample_testcase-09f6b9d4da98adbb: crates/core/../../examples/sample_testcase.rs

crates/core/../../examples/sample_testcase.rs:
