/root/repo/target/debug/examples/regen_experiments-c447bfdeffdd9043.d: crates/core/../../examples/regen_experiments.rs

/root/repo/target/debug/examples/regen_experiments-c447bfdeffdd9043: crates/core/../../examples/regen_experiments.rs

crates/core/../../examples/regen_experiments.rs:
