/root/repo/target/debug/examples/sample_testcase-3674d21f6091b6c4.d: crates/core/../../examples/sample_testcase.rs

/root/repo/target/debug/examples/sample_testcase-3674d21f6091b6c4: crates/core/../../examples/sample_testcase.rs

crates/core/../../examples/sample_testcase.rs:
