/root/repo/target/debug/examples/quickstart-4f8399164f0229eb.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4f8399164f0229eb: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
