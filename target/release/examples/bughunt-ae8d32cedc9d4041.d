/root/repo/target/release/examples/bughunt-ae8d32cedc9d4041.d: crates/core/../../examples/bughunt.rs

/root/repo/target/release/examples/bughunt-ae8d32cedc9d4041: crates/core/../../examples/bughunt.rs

crates/core/../../examples/bughunt.rs:
