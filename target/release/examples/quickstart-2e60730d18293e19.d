/root/repo/target/release/examples/quickstart-2e60730d18293e19.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-2e60730d18293e19: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
