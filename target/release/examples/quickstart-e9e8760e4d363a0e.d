/root/repo/target/release/examples/quickstart-e9e8760e4d363a0e.d: crates/core/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-e9e8760e4d363a0e: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
