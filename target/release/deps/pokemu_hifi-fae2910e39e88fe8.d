/root/repo/target/release/deps/pokemu_hifi-fae2910e39e88fe8.d: crates/hifi/src/lib.rs

/root/repo/target/release/deps/libpokemu_hifi-fae2910e39e88fe8.rlib: crates/hifi/src/lib.rs

/root/repo/target/release/deps/libpokemu_hifi-fae2910e39e88fe8.rmeta: crates/hifi/src/lib.rs

crates/hifi/src/lib.rs:
