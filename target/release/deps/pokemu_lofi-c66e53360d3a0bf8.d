/root/repo/target/release/deps/pokemu_lofi-c66e53360d3a0bf8.d: crates/lofi/src/lib.rs crates/lofi/src/exec.rs crates/lofi/src/mmu.rs crates/lofi/src/state.rs crates/lofi/src/translate.rs crates/lofi/src/uop.rs

/root/repo/target/release/deps/libpokemu_lofi-c66e53360d3a0bf8.rlib: crates/lofi/src/lib.rs crates/lofi/src/exec.rs crates/lofi/src/mmu.rs crates/lofi/src/state.rs crates/lofi/src/translate.rs crates/lofi/src/uop.rs

/root/repo/target/release/deps/libpokemu_lofi-c66e53360d3a0bf8.rmeta: crates/lofi/src/lib.rs crates/lofi/src/exec.rs crates/lofi/src/mmu.rs crates/lofi/src/state.rs crates/lofi/src/translate.rs crates/lofi/src/uop.rs

crates/lofi/src/lib.rs:
crates/lofi/src/exec.rs:
crates/lofi/src/mmu.rs:
crates/lofi/src/state.rs:
crates/lofi/src/translate.rs:
crates/lofi/src/uop.rs:
