/root/repo/target/release/deps/e3_cross_validation-9eaba88897a38ddf.d: crates/bench/benches/e3_cross_validation.rs

/root/repo/target/release/deps/e3_cross_validation-9eaba88897a38ddf: crates/bench/benches/e3_cross_validation.rs

crates/bench/benches/e3_cross_validation.rs:
