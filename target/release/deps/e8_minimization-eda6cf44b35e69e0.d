/root/repo/target/release/deps/e8_minimization-eda6cf44b35e69e0.d: crates/bench/benches/e8_minimization.rs

/root/repo/target/release/deps/e8_minimization-eda6cf44b35e69e0: crates/bench/benches/e8_minimization.rs

crates/bench/benches/e8_minimization.rs:
