/root/repo/target/release/deps/e7_summarization-00ddaca060a8ccea.d: crates/bench/benches/e7_summarization.rs

/root/repo/target/release/deps/e7_summarization-00ddaca060a8ccea: crates/bench/benches/e7_summarization.rs

crates/bench/benches/e7_summarization.rs:
