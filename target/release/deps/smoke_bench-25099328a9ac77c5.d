/root/repo/target/release/deps/smoke_bench-25099328a9ac77c5.d: crates/bench/src/bin/smoke-bench.rs

/root/repo/target/release/deps/smoke_bench-25099328a9ac77c5: crates/bench/src/bin/smoke-bench.rs

crates/bench/src/bin/smoke-bench.rs:
