/root/repo/target/release/deps/pokemu_symx-314c4e713d51f5fd.d: crates/symx/src/lib.rs crates/symx/src/dom.rs crates/symx/src/engine.rs crates/symx/src/minimize.rs crates/symx/src/summary.rs crates/symx/src/tree.rs

/root/repo/target/release/deps/libpokemu_symx-314c4e713d51f5fd.rlib: crates/symx/src/lib.rs crates/symx/src/dom.rs crates/symx/src/engine.rs crates/symx/src/minimize.rs crates/symx/src/summary.rs crates/symx/src/tree.rs

/root/repo/target/release/deps/libpokemu_symx-314c4e713d51f5fd.rmeta: crates/symx/src/lib.rs crates/symx/src/dom.rs crates/symx/src/engine.rs crates/symx/src/minimize.rs crates/symx/src/summary.rs crates/symx/src/tree.rs

crates/symx/src/lib.rs:
crates/symx/src/dom.rs:
crates/symx/src/engine.rs:
crates/symx/src/minimize.rs:
crates/symx/src/summary.rs:
crates/symx/src/tree.rs:
