/root/repo/target/release/deps/pokemu_hwref-fda891b51c5057b3.d: crates/hwref/src/lib.rs

/root/repo/target/release/deps/libpokemu_hwref-fda891b51c5057b3.rlib: crates/hwref/src/lib.rs

/root/repo/target/release/deps/libpokemu_hwref-fda891b51c5057b3.rmeta: crates/hwref/src/lib.rs

crates/hwref/src/lib.rs:
