/root/repo/target/release/deps/pokemu_testgen-507027cbf5833841.d: crates/testgen/src/lib.rs crates/testgen/src/gadgets.rs crates/testgen/src/layout.rs crates/testgen/src/program.rs

/root/repo/target/release/deps/libpokemu_testgen-507027cbf5833841.rlib: crates/testgen/src/lib.rs crates/testgen/src/gadgets.rs crates/testgen/src/layout.rs crates/testgen/src/program.rs

/root/repo/target/release/deps/libpokemu_testgen-507027cbf5833841.rmeta: crates/testgen/src/lib.rs crates/testgen/src/gadgets.rs crates/testgen/src/layout.rs crates/testgen/src/program.rs

crates/testgen/src/lib.rs:
crates/testgen/src/gadgets.rs:
crates/testgen/src/layout.rs:
crates/testgen/src/program.rs:
