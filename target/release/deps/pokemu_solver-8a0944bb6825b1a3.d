/root/repo/target/release/deps/pokemu_solver-8a0944bb6825b1a3.d: crates/solver/src/lib.rs crates/solver/src/blast.rs crates/solver/src/sat.rs crates/solver/src/solver.rs crates/solver/src/term.rs

/root/repo/target/release/deps/libpokemu_solver-8a0944bb6825b1a3.rlib: crates/solver/src/lib.rs crates/solver/src/blast.rs crates/solver/src/sat.rs crates/solver/src/solver.rs crates/solver/src/term.rs

/root/repo/target/release/deps/libpokemu_solver-8a0944bb6825b1a3.rmeta: crates/solver/src/lib.rs crates/solver/src/blast.rs crates/solver/src/sat.rs crates/solver/src/solver.rs crates/solver/src/term.rs

crates/solver/src/lib.rs:
crates/solver/src/blast.rs:
crates/solver/src/sat.rs:
crates/solver/src/solver.rs:
crates/solver/src/term.rs:
