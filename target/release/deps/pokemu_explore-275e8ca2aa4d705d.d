/root/repo/target/release/deps/pokemu_explore-275e8ca2aa4d705d.d: crates/explore/src/lib.rs crates/explore/src/insn_space.rs crates/explore/src/state_space.rs crates/explore/src/symstate.rs

/root/repo/target/release/deps/libpokemu_explore-275e8ca2aa4d705d.rlib: crates/explore/src/lib.rs crates/explore/src/insn_space.rs crates/explore/src/state_space.rs crates/explore/src/symstate.rs

/root/repo/target/release/deps/libpokemu_explore-275e8ca2aa4d705d.rmeta: crates/explore/src/lib.rs crates/explore/src/insn_space.rs crates/explore/src/state_space.rs crates/explore/src/symstate.rs

crates/explore/src/lib.rs:
crates/explore/src/insn_space.rs:
crates/explore/src/state_space.rs:
crates/explore/src/symstate.rs:
