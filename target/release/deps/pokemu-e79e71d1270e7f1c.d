/root/repo/target/release/deps/pokemu-e79e71d1270e7f1c.d: crates/core/src/lib.rs

/root/repo/target/release/deps/libpokemu-e79e71d1270e7f1c.rlib: crates/core/src/lib.rs

/root/repo/target/release/deps/libpokemu-e79e71d1270e7f1c.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
