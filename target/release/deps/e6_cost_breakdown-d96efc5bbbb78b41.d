/root/repo/target/release/deps/e6_cost_breakdown-d96efc5bbbb78b41.d: crates/bench/benches/e6_cost_breakdown.rs

/root/repo/target/release/deps/e6_cost_breakdown-d96efc5bbbb78b41: crates/bench/benches/e6_cost_breakdown.rs

crates/bench/benches/e6_cost_breakdown.rs:
