/root/repo/target/release/deps/pokemu_hifi-fc653253e9f669a4.d: crates/hifi/src/lib.rs

/root/repo/target/release/deps/libpokemu_hifi-fc653253e9f669a4.rlib: crates/hifi/src/lib.rs

/root/repo/target/release/deps/libpokemu_hifi-fc653253e9f669a4.rmeta: crates/hifi/src/lib.rs

crates/hifi/src/lib.rs:
