/root/repo/target/release/deps/pokemu_bench-e901f5d25ef45851.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpokemu_bench-e901f5d25ef45851.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpokemu_bench-e901f5d25ef45851.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
