/root/repo/target/release/deps/e3_cross_validation-fa041699dd666787.d: crates/bench/benches/e3_cross_validation.rs

/root/repo/target/release/deps/e3_cross_validation-fa041699dd666787: crates/bench/benches/e3_cross_validation.rs

crates/bench/benches/e3_cross_validation.rs:
