/root/repo/target/release/deps/pokemu_hwref-6a59184ea631e8a5.d: crates/hwref/src/lib.rs

/root/repo/target/release/deps/libpokemu_hwref-6a59184ea631e8a5.rlib: crates/hwref/src/lib.rs

/root/repo/target/release/deps/libpokemu_hwref-6a59184ea631e8a5.rmeta: crates/hwref/src/lib.rs

crates/hwref/src/lib.rs:
