/root/repo/target/release/deps/pokemu_symx-591bee581f66bbde.d: crates/symx/src/lib.rs crates/symx/src/dom.rs crates/symx/src/engine.rs crates/symx/src/minimize.rs crates/symx/src/summary.rs crates/symx/src/tree.rs

/root/repo/target/release/deps/libpokemu_symx-591bee581f66bbde.rlib: crates/symx/src/lib.rs crates/symx/src/dom.rs crates/symx/src/engine.rs crates/symx/src/minimize.rs crates/symx/src/summary.rs crates/symx/src/tree.rs

/root/repo/target/release/deps/libpokemu_symx-591bee581f66bbde.rmeta: crates/symx/src/lib.rs crates/symx/src/dom.rs crates/symx/src/engine.rs crates/symx/src/minimize.rs crates/symx/src/summary.rs crates/symx/src/tree.rs

crates/symx/src/lib.rs:
crates/symx/src/dom.rs:
crates/symx/src/engine.rs:
crates/symx/src/minimize.rs:
crates/symx/src/summary.rs:
crates/symx/src/tree.rs:
