/root/repo/target/release/deps/pokemu_report-f1cb75adee396b46.d: crates/bench/src/bin/pokemu-report.rs

/root/repo/target/release/deps/pokemu_report-f1cb75adee396b46: crates/bench/src/bin/pokemu-report.rs

crates/bench/src/bin/pokemu-report.rs:
