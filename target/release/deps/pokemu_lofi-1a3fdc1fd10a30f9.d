/root/repo/target/release/deps/pokemu_lofi-1a3fdc1fd10a30f9.d: crates/lofi/src/lib.rs crates/lofi/src/exec.rs crates/lofi/src/mmu.rs crates/lofi/src/state.rs crates/lofi/src/translate.rs crates/lofi/src/uop.rs

/root/repo/target/release/deps/libpokemu_lofi-1a3fdc1fd10a30f9.rlib: crates/lofi/src/lib.rs crates/lofi/src/exec.rs crates/lofi/src/mmu.rs crates/lofi/src/state.rs crates/lofi/src/translate.rs crates/lofi/src/uop.rs

/root/repo/target/release/deps/libpokemu_lofi-1a3fdc1fd10a30f9.rmeta: crates/lofi/src/lib.rs crates/lofi/src/exec.rs crates/lofi/src/mmu.rs crates/lofi/src/state.rs crates/lofi/src/translate.rs crates/lofi/src/uop.rs

crates/lofi/src/lib.rs:
crates/lofi/src/exec.rs:
crates/lofi/src/mmu.rs:
crates/lofi/src/state.rs:
crates/lofi/src/translate.rs:
crates/lofi/src/uop.rs:
