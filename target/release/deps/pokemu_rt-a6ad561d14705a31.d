/root/repo/target/release/deps/pokemu_rt-a6ad561d14705a31.d: crates/rt/src/lib.rs crates/rt/src/bench.rs crates/rt/src/json.rs crates/rt/src/metrics.rs crates/rt/src/pool.rs crates/rt/src/prop.rs crates/rt/src/rng.rs crates/rt/src/trace.rs

/root/repo/target/release/deps/libpokemu_rt-a6ad561d14705a31.rlib: crates/rt/src/lib.rs crates/rt/src/bench.rs crates/rt/src/json.rs crates/rt/src/metrics.rs crates/rt/src/pool.rs crates/rt/src/prop.rs crates/rt/src/rng.rs crates/rt/src/trace.rs

/root/repo/target/release/deps/libpokemu_rt-a6ad561d14705a31.rmeta: crates/rt/src/lib.rs crates/rt/src/bench.rs crates/rt/src/json.rs crates/rt/src/metrics.rs crates/rt/src/pool.rs crates/rt/src/prop.rs crates/rt/src/rng.rs crates/rt/src/trace.rs

crates/rt/src/lib.rs:
crates/rt/src/bench.rs:
crates/rt/src/json.rs:
crates/rt/src/metrics.rs:
crates/rt/src/pool.rs:
crates/rt/src/prop.rs:
crates/rt/src/rng.rs:
crates/rt/src/trace.rs:
