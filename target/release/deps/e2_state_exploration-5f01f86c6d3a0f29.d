/root/repo/target/release/deps/e2_state_exploration-5f01f86c6d3a0f29.d: crates/bench/benches/e2_state_exploration.rs

/root/repo/target/release/deps/e2_state_exploration-5f01f86c6d3a0f29: crates/bench/benches/e2_state_exploration.rs

crates/bench/benches/e2_state_exploration.rs:
