/root/repo/target/release/deps/pokemu_bench-d666902cdca692a2.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpokemu_bench-d666902cdca692a2.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpokemu_bench-d666902cdca692a2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
