/root/repo/target/release/deps/e5_random_vs_lifting-e67993488be6670d.d: crates/bench/benches/e5_random_vs_lifting.rs

/root/repo/target/release/deps/e5_random_vs_lifting-e67993488be6670d: crates/bench/benches/e5_random_vs_lifting.rs

crates/bench/benches/e5_random_vs_lifting.rs:
