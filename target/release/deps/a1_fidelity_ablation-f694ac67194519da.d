/root/repo/target/release/deps/a1_fidelity_ablation-f694ac67194519da.d: crates/bench/benches/a1_fidelity_ablation.rs

/root/repo/target/release/deps/a1_fidelity_ablation-f694ac67194519da: crates/bench/benches/a1_fidelity_ablation.rs

crates/bench/benches/a1_fidelity_ablation.rs:
