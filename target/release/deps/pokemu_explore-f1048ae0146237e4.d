/root/repo/target/release/deps/pokemu_explore-f1048ae0146237e4.d: crates/explore/src/lib.rs crates/explore/src/insn_space.rs crates/explore/src/state_space.rs crates/explore/src/symstate.rs

/root/repo/target/release/deps/libpokemu_explore-f1048ae0146237e4.rlib: crates/explore/src/lib.rs crates/explore/src/insn_space.rs crates/explore/src/state_space.rs crates/explore/src/symstate.rs

/root/repo/target/release/deps/libpokemu_explore-f1048ae0146237e4.rmeta: crates/explore/src/lib.rs crates/explore/src/insn_space.rs crates/explore/src/state_space.rs crates/explore/src/symstate.rs

crates/explore/src/lib.rs:
crates/explore/src/insn_space.rs:
crates/explore/src/state_space.rs:
crates/explore/src/symstate.rs:
