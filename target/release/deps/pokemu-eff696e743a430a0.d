/root/repo/target/release/deps/pokemu-eff696e743a430a0.d: crates/core/src/lib.rs

/root/repo/target/release/deps/libpokemu-eff696e743a430a0.rlib: crates/core/src/lib.rs

/root/repo/target/release/deps/libpokemu-eff696e743a430a0.rmeta: crates/core/src/lib.rs

crates/core/src/lib.rs:
