/root/repo/target/release/deps/e1_insn_exploration-f5de43dd858a73af.d: crates/bench/benches/e1_insn_exploration.rs

/root/repo/target/release/deps/e1_insn_exploration-f5de43dd858a73af: crates/bench/benches/e1_insn_exploration.rs

crates/bench/benches/e1_insn_exploration.rs:
