/root/repo/target/release/deps/pokemu_testgen-c61669cd10554367.d: crates/testgen/src/lib.rs crates/testgen/src/gadgets.rs crates/testgen/src/layout.rs crates/testgen/src/program.rs

/root/repo/target/release/deps/libpokemu_testgen-c61669cd10554367.rlib: crates/testgen/src/lib.rs crates/testgen/src/gadgets.rs crates/testgen/src/layout.rs crates/testgen/src/program.rs

/root/repo/target/release/deps/libpokemu_testgen-c61669cd10554367.rmeta: crates/testgen/src/lib.rs crates/testgen/src/gadgets.rs crates/testgen/src/layout.rs crates/testgen/src/program.rs

crates/testgen/src/lib.rs:
crates/testgen/src/gadgets.rs:
crates/testgen/src/layout.rs:
crates/testgen/src/program.rs:
