/root/repo/target/release/deps/smoke_bench-0aac3aa88f43c788.d: crates/bench/src/bin/smoke-bench.rs

/root/repo/target/release/deps/smoke_bench-0aac3aa88f43c788: crates/bench/src/bin/smoke-bench.rs

crates/bench/src/bin/smoke-bench.rs:
