/root/repo/target/release/deps/e6_cost_breakdown-e2b81ee7ce3f181b.d: crates/bench/benches/e6_cost_breakdown.rs

/root/repo/target/release/deps/e6_cost_breakdown-e2b81ee7ce3f181b: crates/bench/benches/e6_cost_breakdown.rs

crates/bench/benches/e6_cost_breakdown.rs:
