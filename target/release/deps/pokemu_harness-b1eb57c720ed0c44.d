/root/repo/target/release/deps/pokemu_harness-b1eb57c720ed0c44.d: crates/harness/src/lib.rs crates/harness/src/compare.rs crates/harness/src/pipeline.rs crates/harness/src/random.rs crates/harness/src/targets.rs

/root/repo/target/release/deps/libpokemu_harness-b1eb57c720ed0c44.rlib: crates/harness/src/lib.rs crates/harness/src/compare.rs crates/harness/src/pipeline.rs crates/harness/src/random.rs crates/harness/src/targets.rs

/root/repo/target/release/deps/libpokemu_harness-b1eb57c720ed0c44.rmeta: crates/harness/src/lib.rs crates/harness/src/compare.rs crates/harness/src/pipeline.rs crates/harness/src/random.rs crates/harness/src/targets.rs

crates/harness/src/lib.rs:
crates/harness/src/compare.rs:
crates/harness/src/pipeline.rs:
crates/harness/src/random.rs:
crates/harness/src/targets.rs:
