/root/repo/target/release/deps/pokemu_solver-1a413cef0f33eecc.d: crates/solver/src/lib.rs crates/solver/src/blast.rs crates/solver/src/sat.rs crates/solver/src/solver.rs crates/solver/src/term.rs

/root/repo/target/release/deps/libpokemu_solver-1a413cef0f33eecc.rlib: crates/solver/src/lib.rs crates/solver/src/blast.rs crates/solver/src/sat.rs crates/solver/src/solver.rs crates/solver/src/term.rs

/root/repo/target/release/deps/libpokemu_solver-1a413cef0f33eecc.rmeta: crates/solver/src/lib.rs crates/solver/src/blast.rs crates/solver/src/sat.rs crates/solver/src/solver.rs crates/solver/src/term.rs

crates/solver/src/lib.rs:
crates/solver/src/blast.rs:
crates/solver/src/sat.rs:
crates/solver/src/solver.rs:
crates/solver/src/term.rs:
