//! Differential smoke test across the three independent implementations.
//!
//! The Lo-Fi DBT shares no semantics code with the reference interpreter,
//! so large-scale agreement between them is strong evidence for both. This
//! test runs random programs (the §8 random-testing style) under three
//! configurations and checks the relationships the paper's evaluation
//! depends on.

use pokemu::harness::random::random_test;
use pokemu::harness::{compare, run_on_all_targets};
use pokemu::lofi::Fidelity;
use pokemu_rt::Rng;

const N: usize = 24;

#[test]
fn fixed_lofi_agrees_far_more_often_than_qemu_like() {
    let mut rng = Rng::seed_from_u64(0x5EED);
    let mut qemu_like_diffs = 0usize;
    let mut fixed_diffs = 0usize;
    for i in 0..N {
        let prog = random_test(&mut rng, i);
        let a = run_on_all_targets(&prog, Fidelity::QEMU_LIKE);
        if compare(&a.hardware, &a.lofi, &prog.test_insn).is_some() {
            qemu_like_diffs += 1;
        }
        let b = run_on_all_targets(&prog, Fidelity::ALL_FIXED);
        if compare(&b.hardware, &b.lofi, &prog.test_insn).is_some() {
            fixed_diffs += 1;
        }
    }
    // The fixed profile must strictly shrink the difference count. Random
    // garbage also hits behaviors outside the seeded gap classes (e.g.
    // undefined-flag values), so full elimination is not expected here —
    // the per-class elimination is asserted by tests/pipeline_findings.rs.
    assert!(
        qemu_like_diffs >= 3,
        "random garbage should trip the QEMU-like profile: {qemu_like_diffs} diffs over {N} tests"
    );
    assert!(
        fixed_diffs < qemu_like_diffs,
        "fixing the fidelity gaps must shrink differences: {fixed_diffs} fixed vs {qemu_like_diffs} qemu-like over {N} tests"
    );
}

#[test]
fn hifi_and_hardware_differ_only_by_documented_quirks() {
    use pokemu::harness::RootCause;
    let mut rng = Rng::seed_from_u64(0xB0C5);
    let mut diffs = 0usize;
    for i in 0..N {
        let prog = random_test(&mut rng, i);
        let c = run_on_all_targets(&prog, Fidelity::QEMU_LIKE);
        if let Some(d) = compare(&c.hardware, &c.hifi, &prog.test_insn) {
            diffs += 1;
            // The Hi-Fi emulator's only deviations are flag policy (filtered
            // in most cases) and far-pointer fetch order.
            assert!(
                matches!(
                    d.cause,
                    RootCause::FetchOrder | RootCause::FlagPolicy | RootCause::Other(_)
                ),
                "unexpected Hi-Fi divergence on {}: {:?}\n{:#?}",
                prog.name,
                d.cause,
                d.components
            );
        }
    }
    // The vast majority of random tests agree.
    assert!(
        diffs * 5 < N,
        "too many Hi-Fi vs hardware differences: {diffs}/{N}"
    );
}

#[test]
fn all_targets_terminate_on_random_garbage() {
    // Robustness: no panics, and every outcome is a terminal state.
    let mut rng = Rng::seed_from_u64(0xDEAD);
    for i in 0..12 {
        let prog = random_test(&mut rng, i);
        let c = run_on_all_targets(&prog, Fidelity::QEMU_LIKE);
        for s in [&c.hardware, &c.hifi, &c.lofi] {
            // Timeout is allowed (self-jumps etc.), halts and exceptions are
            // the common cases; anything else would have panicked already.
            let _ = s.outcome;
        }
    }
}
