//! Crash-resume determinism for the sharded exploration fleet
//! (DESIGN.md §13).
//!
//! The fleet's whole robustness claim is that process failure is
//! *invisible in the results*: a worker SIGKILLed mid-shard, retried by
//! the coordinator and resumed from its atomic checkpoint, must produce a
//! merged manifest **byte-identical** — deviations, coverage populations,
//! clusters, everything — to an uninterrupted run. This test proves it at
//! 1, 2, and 4 workers, plus the poisoned-shard demotion path and the
//! fleet run-ledger record.
//!
//! `harness = false`: this binary is also the fleet worker. The
//! coordinator's default `worker_cmd` is `current_exe() worker ...`, so
//! when the coordinator under test spawns workers it re-invokes this very
//! test binary; `main` dispatches `worker` argv straight into
//! [`pokemu::harness::fleet::worker_main`] before any test runs.

use std::path::PathBuf;
use std::time::Duration;

use pokemu::harness::fleet::{self, FleetConfig, ShardStatus};
use pokemu_rt::history;

/// The workload every scenario runs: one first byte (0xf7 — MUL/DIV/NOT/
/// NEG/TEST group, 16 classes, known deviations) with a small path cap,
/// big enough to spread across 4 shards and to deviate, small enough to
/// stay fast even when every worker is killed once.
fn config(run_id: &str, root: &str, shards: usize) -> FleetConfig {
    FleetConfig {
        run_id: run_id.to_owned(),
        shards,
        first_byte: Some(0xf7),
        second_byte: None,
        max_paths_per_insn: 16,
        max_attempts: 3,
        backoff_base: Duration::from_millis(10),
        backoff_seed: 7,
        heartbeat_interval: Duration::from_millis(20),
        heartbeat_stale: Duration::from_secs(30),
        worker_cmd: Vec::new(),
        worker_env: Vec::new(),
        root: Some(PathBuf::from(root)),
        incremental: false,
        ledger: false,
    }
}

fn scratch(name: &str) -> String {
    // Cargo runs test binaries with the *package* dir as CWD, so a relative
    // "target" would land in crates/core/; resolve the workspace target dir.
    pokemu_rt::bench::target_dir()
        .join("fleet-test")
        .join(name)
        .display()
        .to_string()
}

fn read_merged(root: &str) -> String {
    let path = format!("{root}/merged.json");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// Kill-one-worker drill at every shard width: every non-empty shard's
/// worker is SIGKILLed right after its first checkpoint
/// (`fleet.checkpoint:kill:1` in the *worker* environment only — the
/// coordinator must not die), and the resumed run's merged manifest must
/// equal the clean run's byte for byte.
fn crash_resume_is_byte_identical() {
    for shards in [1usize, 2, 4] {
        let clean_root = scratch(&format!("clean-{shards}"));
        let killed_root = scratch(&format!("killed-{shards}"));
        for root in [&clean_root, &killed_root] {
            let _ = std::fs::remove_dir_all(root);
        }

        let clean =
            fleet::run_fleet(&config("recovery", &clean_root, shards)).expect("clean fleet run");
        assert!(clean.poisoned.is_empty(), "clean run poisoned: {clean:?}");
        assert!(clean.deviations > 0, "workload must deviate to be evidence");

        let mut killed_cfg = config("recovery", &killed_root, shards);
        killed_cfg.worker_env = vec![(
            "POKEMU_FAULT".to_owned(),
            "fleet.checkpoint:kill:1".to_owned(),
        )];
        let killed = fleet::run_fleet(&killed_cfg).expect("killed fleet run completes");

        assert!(
            killed.poisoned.is_empty(),
            "{shards} shard(s): kill-once must be survivable, got {killed:?}"
        );
        assert!(
            killed.shards.iter().any(|s| s.attempts >= 2),
            "{shards} shard(s): at least one worker must actually have been \
             killed and retried, got {killed:?}"
        );
        assert_eq!(
            read_merged(&clean_root),
            read_merged(&killed_root),
            "{shards} shard(s): merged manifest after SIGKILL + resume must \
             be byte-identical to the uninterrupted run"
        );
    }
}

/// Poisoned-shard semantics: a shard whose every spawn fails (the
/// `fleet.spawn` fault point, keyed by shard index, armed in the
/// *coordinator*) exhausts its attempts and is demoted to `poisoned`,
/// while the other shard completes and the run still returns `Ok`.
fn poisoned_shard_is_quarantined_by_name() {
    let root = scratch("poison");
    let _ = std::fs::remove_dir_all(&root);
    let mut cfg = config("poison", &root, 2);
    cfg.max_attempts = 2;

    pokemu_rt::fault::arm("fleet.spawn:unknown:0").expect("valid fault spec");
    let outcome = fleet::run_fleet(&cfg);
    pokemu_rt::fault::disarm();
    let outcome = outcome.expect("a poisoned shard must not abort the run");

    assert_eq!(outcome.poisoned, vec!["shard-0".to_owned()]);
    let shard0 = &outcome.shards[0];
    assert!(
        matches!(shard0.status, ShardStatus::Poisoned(_)) && shard0.attempts == 2,
        "shard-0 must be poisoned after exactly max_attempts, got {shard0:?}"
    );
    assert_eq!(
        outcome.shards[1].status,
        ShardStatus::Completed,
        "the healthy shard must be unaffected"
    );
    assert!(
        read_merged(&root).contains("\"poisoned\":[\"shard-0\"]"),
        "the merged manifest must name the poisoned shard"
    );
}

/// The merge appends one `kind: "fleet"` record to the run ledger.
fn fleet_run_lands_in_ledger() {
    let hdir = scratch("ledger");
    let _ = std::fs::remove_dir_all(&hdir);
    std::env::set_var("POKEMU_HISTORY_DIR", &hdir);
    std::env::set_var("POKEMU_HISTORY", "1");

    let root = scratch("ledger-run");
    let _ = std::fs::remove_dir_all(&root);
    let mut cfg = config("ledger", &root, 2);
    cfg.ledger = true;
    let outcome = fleet::run_fleet(&cfg).expect("ledger fleet run");

    let records = history::load(&history::ledger_path()).expect("ledger parses");
    let rec = records.last().expect("one record appended");
    assert_eq!(rec.kind, "fleet");
    assert_eq!(rec.run_id, "ledger");
    assert_eq!(
        rec.det.get("count.deviations").copied(),
        Some(outcome.deviations as u64)
    );
    assert_eq!(rec.det.get("count.poisoned").copied(), Some(0));
    std::env::remove_var("POKEMU_HISTORY_DIR");
    std::env::remove_var("POKEMU_HISTORY");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("worker") {
        std::process::exit(fleet::worker_main(&args[1..]));
    }
    // Keep worker processes hermetic: nothing below must leak a ledger
    // append or inherit a fault spec from the ambient environment.
    std::env::remove_var("POKEMU_FAULT");
    std::env::set_var("POKEMU_HISTORY", "0");

    eprintln!("[fleet_recovery] crash_resume_is_byte_identical");
    crash_resume_is_byte_identical();
    eprintln!("[fleet_recovery] poisoned_shard_is_quarantined_by_name");
    poisoned_shard_is_quarantined_by_name();
    eprintln!("[fleet_recovery] fleet_run_lands_in_ledger");
    fleet_run_lands_in_ledger();
    println!("fleet_recovery: 3 scenarios passed");
}
