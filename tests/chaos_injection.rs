//! Chaos tests: the deterministic fault layer armed against the real
//! pipeline.
//!
//! Each test arms one `pokemu_rt::fault` point — a worker panic, a starved
//! solver, an injected stall — and checks the degradation contract from
//! DESIGN.md §8: the campaign finishes, the failure is *attributed* (a
//! quarantine record, an `unknown_queries` count, a `completed: false`
//! flag) rather than fatal, and every instruction the fault did not name
//! produces byte-identical results to a fault-free run, independent of the
//! worker-thread count.

use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use pokemu::harness::{run_cross_validation, CrossValidation, PipelineConfig};
use pokemu::solver::{BvSolver, SatResult, TermPool};
use pokemu_rt::fault;

/// The armed fault set (and the metrics/coverage registries the pipeline
/// writes to) is process-global, so chaos tests serialize on this lock.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Disarms every fault on drop, so a failing assertion cannot leak an
/// armed fault into the next test.
struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        fault::disarm();
    }
}

/// The standard small pipeline run (same shape as
/// `tests/deterministic_replay.rs`): the 0x80 ALU-group opcodes, enough to
/// produce several work items and real deviations in well under a second.
fn small_run(threads: usize) -> CrossValidation {
    run_cross_validation(PipelineConfig {
        first_byte: Some(0x80),
        max_paths_per_insn: 64,
        threads,
        ..PipelineConfig::default()
    })
}

/// The instructions (by hex) that produced at least one deviation.
fn deviating_hexes(cv: &CrossValidation) -> BTreeSet<String> {
    cv.deviations.iter().map(|d| d.insn_hex.clone()).collect()
}

/// `faulted`'s deviations must be exactly `clean`'s minus (at most) the one
/// instruction the fault named — same records, same order, nothing else
/// perturbed.
fn assert_only_one_instruction_lost(clean: &CrossValidation, faulted: &CrossValidation) {
    let missing: BTreeSet<String> = deviating_hexes(clean)
        .difference(&deviating_hexes(faulted))
        .cloned()
        .collect();
    assert!(
        missing.len() <= 1,
        "only the faulted instruction may lose deviations, got {missing:?}"
    );
    let expected: Vec<_> = clean
        .deviations
        .iter()
        .filter(|d| !missing.contains(&d.insn_hex))
        .collect();
    let got: Vec<_> = faulted.deviations.iter().collect();
    assert_eq!(
        got, expected,
        "unaffected instructions must be byte-identical to the fault-free run"
    );
}

/// A worker panic on one item becomes exactly one quarantine record; the
/// run completes, the other instructions' deviations and coverage are
/// byte-identical to a fault-free run, on 1, 2, and 8 worker threads.
#[test]
fn worker_panic_is_quarantined_and_the_rest_stays_byte_identical() {
    let _g = chaos_lock();
    let _d = Disarm;
    pokemu_rt::coverage::set_enabled(true);

    fault::arm("pool.item:panic:1").unwrap();
    let run = |threads| {
        let cv = small_run(threads);
        let cov = pokemu_rt::coverage::snapshot();
        (cv, cov)
    };
    let (cv1, cov1) = run(1);
    let (cv2, cov2) = run(2);
    let (cv8, cov8) = run(8);

    for (cv, threads) in [(&cv1, 1), (&cv2, 2), (&cv8, 8)] {
        assert!(
            cv.unique_instructions >= 2,
            "need several work items for a targeted fault"
        );
        assert!(
            cv.completed,
            "a quarantined item must not clear the completion flag ({threads} threads)"
        );
        assert_eq!(cv.quarantined.len(), 1, "{threads} threads");
        let q = &cv.quarantined[0];
        assert_eq!(
            q.item,
            Some(1),
            "the fault named item 1 ({threads} threads)"
        );
        assert!(
            q.message.contains("pool.item"),
            "panic payload names the fault point: {}",
            q.message
        );
        assert!(
            !q.flight.is_empty(),
            "quarantine carries a flight-recorder snapshot"
        );
        assert_eq!(cv.skipped_instructions, 0, "{threads} threads");
        let done: usize = cv.stages.workers.iter().map(|w| w.items).sum();
        assert_eq!(
            done + 1,
            cv.unique_instructions,
            "every item but the quarantined one succeeded ({threads} threads)"
        );
    }

    // Degradation is thread-invariant: same deviations, same coverage.
    assert_eq!(cv1.deviations, cv2.deviations, "1 vs 2 worker threads");
    assert_eq!(cv1.deviations, cv8.deviations, "1 vs 8 worker threads");
    assert_eq!(cov1, cov2, "1 vs 2 worker threads coverage");
    assert_eq!(cov1, cov8, "1 vs 8 worker threads coverage");

    // Against a fault-free run, only the quarantined instruction differs.
    fault::disarm();
    let clean = small_run(2);
    assert!(clean.quarantined.is_empty());
    assert!(
        clean.total_paths >= cv1.total_paths,
        "the quarantined item can only remove paths"
    );
    assert_only_one_instruction_lost(&clean, &cv1);
}

/// A solver starved by an `unknown` fault scoped to one work item degrades
/// that item alone: its queries count as unknown, it is not fully explored,
/// and every other instruction's results are untouched.
#[test]
fn starved_solver_degrades_one_instruction_not_the_run() {
    let _g = chaos_lock();
    let _d = Disarm;

    fault::arm("solver.check:unknown:0").unwrap();
    let cv1 = small_run(1);
    let cv8 = small_run(8);
    fault::disarm();
    let clean = small_run(2);

    for (cv, threads) in [(&cv1, 1), (&cv8, 8)] {
        assert!(cv.completed, "{threads} threads");
        assert!(cv.quarantined.is_empty(), "{threads} threads");
        assert!(
            cv.unknown_queries > 0,
            "item 0's queries must degrade to Unknown ({threads} threads)"
        );
        assert!(
            cv.fully_explored < cv.unique_instructions,
            "the starved instruction cannot count as fully explored"
        );
    }
    assert_eq!(
        cv1.deviations, cv8.deviations,
        "degradation is thread-invariant"
    );
    assert_eq!(cv1.unknown_queries, cv8.unknown_queries);

    assert_eq!(clean.unknown_queries, 0, "fault-free run must not degrade");
    assert!(
        cv1.total_paths < clean.total_paths,
        "the starved instruction contributes no paths ({} vs {})",
        cv1.total_paths,
        clean.total_paths
    );
    assert_only_one_instruction_lost(&clean, &cv1);
}

/// Quarantine isolation extends to the conformance corpus: a worker panic
/// on one corpus program (the same `pool.item` fault point `POKEMU_FAULT`
/// arms from the environment) removes exactly that program's result, and
/// every other program's rendered baseline document stays byte-identical
/// to a fault-free run — on 1 and 8 worker threads alike.
#[test]
fn quarantined_corpus_program_leaves_the_rest_byte_identical() {
    use pokemu::harness::conformance::{build_corpus, program_json, run_conformance};
    use std::collections::BTreeMap;

    let _g = chaos_lock();
    let _d = Disarm;

    let corpus = build_corpus();
    let render = |run: &pokemu::harness::ConformanceRun| -> BTreeMap<String, String> {
        run.results
            .iter()
            .map(|r| (r.name.clone(), program_json(r)))
            .collect()
    };

    fault::arm("pool.item:panic:1").unwrap();
    let faulted1 = run_conformance(&corpus, 1);
    let faulted8 = run_conformance(&corpus, 8);
    fault::disarm();
    let clean = run_conformance(&corpus, 2);

    assert!(clean.quarantined.is_empty());
    assert_eq!(clean.results.len(), corpus.len());

    let clean_docs = render(&clean);
    for (faulted, threads) in [(&faulted1, 1), (&faulted8, 8)] {
        assert_eq!(faulted.quarantined.len(), 1, "{threads} threads");
        assert_eq!(
            faulted.quarantined[0].item,
            Some(1),
            "the fault named corpus item 1 ({threads} threads)"
        );
        assert_eq!(
            faulted.results.len(),
            corpus.len() - 1,
            "exactly the faulted program is missing ({threads} threads)"
        );
        let docs = render(faulted);
        assert!(
            !docs.contains_key(&corpus[1].name),
            "the quarantined program must not report a result"
        );
        for (name, doc) in &docs {
            assert_eq!(
                Some(doc),
                clean_docs.get(name),
                "{name} must be byte-identical to the fault-free run \
                 ({threads} threads)"
            );
        }
    }
}

/// A latency fault that stalls a query past the solver's own deadline
/// degrades that query to `Unknown`; the next query (fault disarmed, fresh
/// per-query deadline) answers normally — learned state intact.
#[test]
fn latency_fault_past_the_solver_deadline_degrades_to_unknown() {
    let _g = chaos_lock();
    let _d = Disarm;

    let mut pool = TermPool::new();
    let x = pool.var(8, "x");
    let five = pool.constant(8, 5);
    let c = pool.eq(x, five);

    let mut s = BvSolver::new();
    s.set_deadline(Some(Duration::from_millis(5)));
    fault::arm("solver.check:latency=30:*").unwrap();
    let t = Instant::now();
    assert_eq!(
        s.check(&pool, &[c]),
        SatResult::Unknown,
        "the stall must consume the whole per-query budget"
    );
    assert!(
        t.elapsed() >= Duration::from_millis(30),
        "the latency fault really slept"
    );

    fault::disarm();
    assert_eq!(
        s.check(&pool, &[c]),
        SatResult::Sat,
        "the solver recovers as soon as the stall clears"
    );
}

/// A run deadline under injected per-item stalls stops dispatch cleanly:
/// in-flight items finish, the rest are counted as skipped, and the run
/// reports `completed: false` instead of hanging or aborting.
#[test]
fn run_deadline_stops_dispatch_and_marks_the_run_incomplete() {
    let _g = chaos_lock();
    let _d = Disarm;

    // Every claimed item stalls 60 ms at the pool fault point; the whole
    // run gets 20 ms. Each worker claims one item (well before the
    // deadline), finishes it slowly, then finds the budget spent — so at
    // most `threads` items complete and the remainder is skipped.
    fault::arm("pool.item:latency=60:*").unwrap();
    let cv = run_cross_validation(PipelineConfig {
        first_byte: Some(0x80),
        max_paths_per_insn: 64,
        threads: 2,
        run_deadline: Some(Duration::from_millis(20)),
        ..PipelineConfig::default()
    });

    assert!(!cv.completed, "a deadline-cut run must say so");
    assert!(cv.quarantined.is_empty());
    let done: usize = cv.stages.workers.iter().map(|w| w.items).sum();
    assert!(
        done <= 2,
        "no worker claims a second item past the deadline"
    );
    assert_eq!(
        done + cv.skipped_instructions,
        cv.unique_instructions,
        "every instruction is accounted for: finished or skipped"
    );
    assert!(
        cv.skipped_instructions >= cv.unique_instructions - 2,
        "the queue tail must be skipped, not silently dropped"
    );
}
