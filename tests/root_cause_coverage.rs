//! E4 coverage: every fidelity gap seeded into the Lo-Fi emulator is found
//! by the pipeline and lands in a root-cause cluster.
//!
//! The paper's central claim is completeness of discovery: path-exploration
//! lifting finds *all* the deviation classes §6.2 reports, not just some.
//! Each seeded gap has a trigger instruction whose restricted pipeline run
//! must produce the corresponding cluster.

use std::collections::BTreeSet;

use pokemu::harness::{run_cross_validation, PipelineConfig, RootCause};

fn causes_for(first_byte: u8, second_byte: Option<u8>, max_paths: usize) -> BTreeSet<RootCause> {
    let r = run_cross_validation(PipelineConfig {
        first_byte: Some(first_byte),
        second_byte,
        max_paths_per_insn: max_paths,
        threads: 2,
        ..PipelineConfig::default()
    });
    r.lofi_clusters
        .iter()
        .map(|(cause, _, _)| cause.clone())
        .collect()
}

#[test]
fn every_seeded_deviation_class_appears_in_a_cluster() {
    // (trigger instruction, expected cluster) — one per seeded gap class.
    let expectations: [(u8, Option<u8>, usize, RootCause); 6] = [
        // leave is non-atomic: ESP is clobbered before the faulting read.
        (0xc9, None, 96, RootCause::AtomicityViolation),
        // mov [moffs8], al skips segment limit/rights checks.
        (0xa2, None, 96, RootCause::MissingSegmentChecks),
        // rdmsr of an invalid MSR misses its #GP.
        (0x0f, Some(0x32), 96, RootCause::MsrValidation),
        // iret pops its frame in the wrong order.
        (0xcf, None, 128, RootCause::FetchOrder),
        // mov sreg, r/m16 fails to set the descriptor accessed bit.
        (0x8e, None, 128, RootCause::AccessedFlag),
        // salc is a valid encoding rejected with #UD.
        (0xd6, None, 16, RootCause::EncodingRejected),
    ];
    let mut missing = Vec::new();
    for (first, second, paths, expected) in expectations {
        let causes = causes_for(first, second, paths);
        if !causes.contains(&expected) {
            missing.push(format!(
                "{first:#04x}/{second:?} -> {expected:?} (got {causes:?})"
            ));
        }
    }
    assert!(
        missing.is_empty(),
        "seeded deviation classes not clustered: {missing:#?}"
    );
}

#[test]
fn undefined_flag_deviations_differ_raw_but_never_cluster() {
    // The sixth §6.2 class: undefined status flags. These differ between
    // implementations (raw counting sees them) but the filter removes them
    // before clustering — they must NOT appear as a FlagPolicy cluster from
    // mul/div, whose non-CF/OF flags are architecturally undefined.
    let r = run_cross_validation(PipelineConfig {
        first_byte: Some(0xf7),
        max_paths_per_insn: 48,
        threads: 2,
        ..PipelineConfig::default()
    });
    assert!(r.total_paths > 0);
    assert!(
        r.hifi_differences > r.hifi_filtered,
        "undefined flags must show up raw and be filtered: {} raw vs {} filtered",
        r.hifi_differences,
        r.hifi_filtered
    );
}
