//! E4: the paper's root-cause findings, reproduced end to end.
//!
//! Each test points the full pipeline (decoder exploration → state-space
//! exploration → test generation → three-way execution → clustering) at the
//! instructions where §6.2 reports a QEMU deviation, and asserts the
//! corresponding root-cause cluster is found.

use pokemu::harness::{run_cross_validation, PipelineConfig, RootCause};
use pokemu::lofi::Fidelity;

fn run(first_byte: u8, max_paths: usize) -> pokemu::harness::CrossValidation {
    run_cross_validation(PipelineConfig {
        first_byte: Some(first_byte),
        max_paths_per_insn: max_paths,
        threads: 2,
        ..PipelineConfig::default()
    })
}

#[test]
fn finds_leave_atomicity_violation() {
    // §6.2: leave "corrupts the stack pointer when the page containing the
    // top of the stack is not accessible".
    let r = run(0xc9, 96);
    assert!(r.total_paths > 0);
    assert!(
        r.lofi_clusters.has(&RootCause::AtomicityViolation),
        "leave atomicity cluster expected; clusters: {:?}",
        r.lofi_clusters
    );
}

#[test]
fn finds_missing_msr_validation() {
    // §6.2: "QEMU does not raise a general protection fault ... when the
    // rmsr instruction is used to read ... an invalid machine status
    // register".
    let r = run_cross_validation(PipelineConfig {
        first_byte: Some(0x0f),
        second_byte: Some(0x32), // rdmsr
        max_paths_per_insn: 96,
        threads: 2,
        ..PipelineConfig::default()
    });
    assert!(
        r.lofi_clusters.has(&RootCause::MsrValidation),
        "rdmsr cluster expected; clusters: {:?}",
        r.lofi_clusters
    );
}

#[test]
fn finds_missing_segment_checks() {
    // §6.2: "QEMU ... does not enforce segment limits and rights with the
    // majority of instructions". mov [moffs], al is a plain store whose
    // limit checks QEMU's fast path skips.
    let r = run(0xa2, 96);
    assert!(
        r.lofi_clusters.has(&RootCause::MissingSegmentChecks),
        "segment-check cluster expected; clusters: {:?}",
        r.lofi_clusters
    );
    // The fixed build eliminates the cluster.
    let fixed = run_cross_validation(PipelineConfig {
        first_byte: Some(0xa2),
        max_paths_per_insn: 96,
        lofi_fidelity: Fidelity {
            enforce_segment_checks: true,
            ..Fidelity::QEMU_LIKE
        },
        threads: 2,
        ..PipelineConfig::default()
    });
    assert!(
        !fixed.lofi_clusters.has(&RootCause::MissingSegmentChecks),
        "fix must eliminate the cluster; clusters: {:?}",
        fixed.lofi_clusters
    );
}

#[test]
fn finds_rejected_encoding() {
    // §6.2: "QEMU does not consider valid certain instruction encodings".
    // salc (D6) is undocumented but real.
    let r = run(0xd6, 16);
    assert!(
        r.lofi_clusters.has(&RootCause::EncodingRejected),
        "encoding cluster expected; clusters: {:?}",
        r.lofi_clusters
    );
}

#[test]
fn undefined_flags_differ_raw_but_are_filtered() {
    // §6.2: undefined status flags differ between implementations but are
    // filtered before clustering. mul (F6 /4) leaves SF/ZF/AF/PF undefined:
    // the Hi-Fi emulator clears them, the hardware model computes them.
    let r = run(0xf7, 48);
    assert!(r.total_paths > 0);
    assert!(
        r.hifi_differences > 0,
        "raw Hi-Fi differences expected from undefined flags"
    );
    assert!(
        r.hifi_filtered < r.hifi_differences,
        "the filter must remove undefined-flag differences: {} raw vs {} filtered",
        r.hifi_differences,
        r.hifi_filtered
    );
}

#[test]
fn coverage_statistics_have_the_papers_shape() {
    // §6.1 shape checks on a slice of the space: ALU group 0x80 has many
    // candidate encodings collapsing into few classes, fully explored.
    let r = run(0x80, 160);
    assert!(r.candidates > r.unique_instructions, "encodings >> classes");
    assert!(r.unique_instructions >= 14, "8 sub-ops x reg/mem forms");
    assert_eq!(
        r.fully_explored, r.unique_instructions,
        "simple ALU instructions must reach complete path coverage"
    );
    assert!(r.total_paths > r.unique_instructions);
}
