//! Run-ledger contract: the history records the pipeline appends after each
//! run (DESIGN.md §12) obey the repo's determinism guarantees, survive a
//! serialize/parse round trip bit-for-bit, detect tampering by content
//! hash, and support causal attribution of an injected performance
//! regression down to the responsible subsystem by name.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

use pokemu::harness::ledger::{build_record, hot_tb_delta};
use pokemu::harness::{run_cross_validation, CrossValidation, PipelineConfig};
use pokemu_rt::history::{self, RunRecord};
use pokemu_rt::{fault, metrics, prof};

/// The metrics registry, coverage bitmaps, profiler, and fault plan are all
/// process-global; tests that run the pipeline serialize on this lock so a
/// concurrent test's counters cannot leak into a record under comparison.
fn ledger_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Scratch ledger path under cargo's per-target test tmpdir, namespaced by
/// test so parallel tests in this binary never share a file.
fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("run_ledger");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

/// Runs the pipeline once and folds the outcome into a ledger record the
/// same way `pipeline::run_cross_validation` does when history is armed.
fn record_run(run_id: &str, config: PipelineConfig) -> (RunRecord, CrossValidation) {
    let before = metrics::snapshot();
    let hot_before: BTreeMap<u32, u64> = pokemu::lofi::hot_tbs().into_iter().collect();
    let cv = run_cross_validation(config.clone());
    let delta = metrics::snapshot().since(&before);
    let hot_delta = hot_tb_delta(&hot_before, &pokemu::lofi::hot_tbs());
    let record = build_record(
        run_id,
        &config,
        &cv,
        &delta,
        &pokemu_rt::coverage::snapshot(),
        &hot_delta,
    );
    (record, cv)
}

fn small_config(threads: usize) -> PipelineConfig {
    PipelineConfig {
        first_byte: Some(0x80),
        max_paths_per_insn: 16,
        threads,
        ..PipelineConfig::default()
    }
}

/// The `det` section of a ledger record — work counts, coverage
/// populations, deviation clusters, delta counters, hot-TB execution
/// deltas — and the config fingerprint must be byte-identical at 1, 2, and
/// 8 worker threads, and every record must round-trip through its ledger
/// line with the content hash intact.
#[test]
fn det_fields_are_thread_count_invariant_and_round_trip() {
    let _serial = ledger_lock();
    pokemu_rt::coverage::set_enabled(true);
    // Warm-up: saturate the sticky caches (coverage bits, lo-fi TB cache /
    // superblock formation) so all three recorded runs see identical
    // steady-state behavior.
    let _ = record_run("warmup", small_config(2));

    let records: Vec<RunRecord> = [1usize, 2, 8]
        .iter()
        .map(|&t| record_run("ledger-det", small_config(t)).0)
        .collect();

    let first = &records[0];
    assert!(first.det["count.total_paths"] > 0, "run explored no paths");
    assert!(
        first.det.keys().any(|k| k.starts_with("cov.")),
        "coverage populations missing from det section: {:?}",
        first.det.keys().collect::<Vec<_>>()
    );
    assert!(
        first.det.keys().any(|k| k.starts_with("hot_tb.")),
        "hot-TB execution deltas missing from det section"
    );
    assert!(
        first.det.keys().any(|k| k.starts_with("cluster.lofi.")),
        "0x80 must produce lo-fi deviation clusters"
    );
    for (i, r) in records.iter().enumerate().skip(1) {
        let threads = [1, 2, 8][i];
        assert_eq!(first.det, r.det, "det section differs at {threads} threads");
        assert_eq!(
            first.config_fp, r.config_fp,
            "config fingerprint must not depend on the thread count"
        );
    }

    // Round trip: serialize → parse must preserve the deterministic
    // sections exactly and re-derive the same content hash.
    for r in &records {
        let (parsed, hash_ok) = RunRecord::parse_line(&r.to_line()).expect("line parses");
        assert!(hash_ok, "freshly written record must verify");
        assert_eq!(parsed.det, r.det);
        assert_eq!(parsed.run_id, r.run_id);
        assert_eq!(parsed.config_fp, r.config_fp);
        assert_eq!(
            parsed.timing.keys().collect::<Vec<_>>(),
            r.timing.keys().collect::<Vec<_>>()
        );
    }
}

/// Flipping one digit inside a stored record body must be caught by
/// `history::verify`, which names the file, line, and run id of the
/// tampered record — the integrity half of the `history verify` CLI gate.
#[test]
fn verify_names_the_tampered_record() {
    let path = scratch("tamper.jsonl");
    let mut a = RunRecord::new("pipeline", "good-run", "feedc0dedeadbeef".into());
    a.det("count.total_paths", 41);
    let mut b = RunRecord::new("pipeline", "tampered-run", "feedc0dedeadbeef".into());
    b.det("count.total_paths", 41);
    history::append_to(&path, a).expect("append a");
    history::append_to(&path, b).expect("append b");
    assert_eq!(
        history::verify(&path).expect("readable"),
        Vec::<String>::new(),
        "untouched ledger must verify clean"
    );

    // Tamper with the second record's body without touching its hash.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    lines[1] = lines[1].replace("\"count.total_paths\":41", "\"count.total_paths\":14");
    assert_ne!(lines[1], text.lines().nth(1).unwrap(), "tamper must apply");
    std::fs::write(&path, lines.join("\n") + "\n").unwrap();

    let violations = history::verify(&path).expect("readable");
    assert_eq!(violations.len(), 1, "exactly one record was tampered");
    assert!(
        violations[0].contains(":2:") && violations[0].contains("tampered-run"),
        "violation must name line and run id: {}",
        violations[0]
    );
    // Strict loading refuses nothing (the line still parses) but the
    // record no longer round-trips its hash.
    let records = history::load(&path).expect("parseable");
    let (_, hash_ok) = RunRecord::parse_line(&records[1].to_line()).unwrap();
    assert!(hash_ok, "re-serialized record is self-consistent again");
}

/// Injecting a 2 ms latency fault into every solver `check` call must show
/// up in `compare`'s causal attribution as a `wall.parallel` regression
/// whose children name a `solver.ns.<origin>` subsystem — the exact output
/// the CI gate self-test greps for.
#[test]
fn attribution_names_injected_solver_latency_by_origin() {
    let _serial = ledger_lock();
    prof::set_enabled(true);
    let (baseline, _) = record_run("attr-baseline", small_config(2));
    fault::arm("solver.check:latency=2:*").expect("fault plan parses");
    let (faulted, cv) = record_run("attr-faulted", small_config(2));
    fault::disarm();
    prof::set_enabled(false);
    let _ = prof::take();
    assert!(cv.total_paths > 0, "faulted run still completes");

    // The fault is timing-pure apart from its own injection counter: the
    // deterministic work counts must match the baseline record.
    assert_eq!(
        baseline.det["count.total_paths"],
        faulted.det["count.total_paths"]
    );
    assert!(faulted.det.get("ctr.fault.injected").copied().unwrap_or(0) > 0);

    let att = history::attribute(&baseline, &faulted);
    assert!(
        att.total_delta_ns > 0.0,
        "injected latency must slow the run: {:?}",
        att.total_delta_ns
    );
    // The fault slows every solver call, so both the serial explore stage
    // and the parallel stage regress; the parallel entry is the one that
    // subdivides down to solver origins.
    let top = att.entries.first().expect("attribution is non-empty");
    assert!(
        top.delta_ns > 0.0,
        "top-ranked stage must be a regression: {top:?}"
    );
    let parallel = att
        .entries
        .iter()
        .find(|e| e.name == "wall.parallel")
        .expect("parallel stage must be attributed");
    assert!(parallel.delta_ns > 0.0, "{parallel:?}");
    let solver_child = parallel
        .children
        .iter()
        .find(|(name, delta)| name.starts_with("solver.ns.") && *delta > 0.0);
    assert!(
        solver_child.is_some(),
        "attribution must name a solver origin: {:?}",
        parallel.children
    );
}

/// Trend gating over real pipeline records: a group of identical runs is
/// quiet, and a single deterministic-field drift is flagged by metric name
/// (MAD 0 ⇒ any change violates).
#[test]
fn trend_flags_deterministic_drift_by_metric_name() {
    let _serial = ledger_lock();
    pokemu_rt::coverage::set_enabled(true);
    let _ = record_run("warmup", small_config(2));
    let mut group: Vec<RunRecord> = (0..3)
        .map(|i| {
            let (mut r, _) = record_run(&format!("trend-{i}"), small_config(2));
            r.seq = i + 1;
            r
        })
        .collect();

    let quiet = history::trend_stats(&group, history::DEFAULT_TREND_WINDOW);
    let noisy: Vec<&str> = quiet
        .iter()
        .filter(|s| s.deterministic && s.violation.is_some())
        .map(|s| s.name.as_str())
        .collect();
    assert!(noisy.is_empty(), "identical runs must not drift: {noisy:?}");

    // Simulate a lost deviation in the newest run — the exact failure the
    // CI trend gate exists to catch.
    let latest = group.last_mut().unwrap();
    let count = latest.det["count.deviations"];
    latest.det("count.deviations", count + 3);
    let stats = history::trend_stats(&group, history::DEFAULT_TREND_WINDOW);
    let flagged = stats
        .iter()
        .find(|s| s.name == "count.deviations")
        .expect("metric present");
    assert!(
        flagged
            .violation
            .as_deref()
            .is_some_and(|v| v.contains("drifted")),
        "drift must be flagged: {:?}",
        flagged.violation
    );
}

/// Seq numbering survives garbage collection: after `gc` truncates the
/// ledger, the next append continues the sequence instead of restarting,
/// so run ids stay totally ordered across retention windows.
#[test]
fn gc_preserves_seq_continuity() {
    let path = scratch("gc.jsonl");
    for i in 0..6 {
        let mut r = RunRecord::new("bench", &format!("run-{i}"), "0123456789abcdef".into());
        r.det("count.x", i);
        history::append_to(&path, r).expect("append");
    }
    let (kept, dropped) = history::gc(&path, 2).expect("gc");
    assert_eq!((kept, dropped), (2, 4));
    let records = history::load(&path).expect("load");
    assert_eq!(records.len(), 2);
    assert_eq!(records.last().unwrap().seq, 6);

    let mut next = RunRecord::new("bench", "run-after-gc", "0123456789abcdef".into());
    next.det("count.x", 99);
    let seq = history::append_to(&path, next).expect("append after gc");
    assert_eq!(seq, 7, "seq must continue past the collected records");
}
