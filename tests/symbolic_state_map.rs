//! F3: the symbolic machine-state map of the paper's Figure 3.
//!
//! Asserts exactly which parts of the machine state exploration marks
//! symbolic and which stay concrete.

use pokemu::explore::symstate;
use pokemu::harness::baseline_snapshot;
use pokemu::isa::state::Gpr;
use pokemu::symx::{Dom, Executor};
use pokemu::testgen::layout;

#[test]
fn figure3_symbolic_concrete_split() {
    let baseline = baseline_snapshot();
    let mut exec = Executor::new();
    // Register the descriptor-load summary, as state-space exploration does
    // (§3.3.2): machine construction is then branch-free.
    let summary = exec.summarize(
        &[(32, "lo"), (32, "hi"), (16, "sel"), (2, "cpl"), (2, "kind")],
        |e, f| pokemu::isa::translate::descriptor_checks(e, f[0], f[1], f[2], f[3], f[4]).to_vec(),
    );
    exec.register_summary(pokemu::isa::translate::DESC_SUMMARY_KEY, summary);
    let template = symstate::symbolic_memory_template(&mut exec, &baseline);
    let r = exec.explore(|e| {
        let mut m = symstate::symbolic_machine(e, &baseline, &template);

        // GPRs: symbolic.
        for rn in Gpr::ALL {
            assert!(
                e.as_const(m.gpr[rn as usize]).is_none(),
                "{} must be symbolic",
                rn.name()
            );
        }
        // EIP: concrete (Fig. 3: "the instruction pointer needs to be
        // concrete").
        assert_eq!(m.eip, layout::CODE_BASE);
        // EFLAGS: symbolic as a whole...
        assert!(e.as_const(m.eflags).is_none());
        // CR3 base and table bases: concrete pointers.
        assert_eq!(m.cr3_base, layout::PD_BASE);
        assert_eq!(m.gdtr.base, layout::GDT_BASE);
        assert_eq!(m.idtr.base, layout::IDT_BASE);
        // ...but their limits are symbolic.
        assert!(e.as_const(m.gdtr.limit).is_none());
        // CR0/CR4 symbolic; CR2 concrete.
        assert!(e.as_const(m.cr0).is_none());
        assert!(e.as_const(m.cr4).is_none());
        // Segment selectors symbolic; descriptor-cache base derived from
        // concrete base bytes must fold to the baseline base (0).
        for s in pokemu::isa::Seg::ALL {
            assert!(e.as_const(m.segs[s as usize].selector).is_none());
            // The descriptor's *base* bytes (2, 3, 4, 7) are concrete in the
            // GDT (Fig. 3 leaves base addresses concrete); the limit and
            // attribute bytes (0, 1, 5, 6) are symbolic.
            let entry = layout::GDT_BASE + layout::gdt_index(s) as u32 * 8;
            for off in [2u32, 3, 4, 7] {
                let b = m.mem.read_u8(e, entry + off);
                assert!(
                    e.as_const(b).is_some(),
                    "{} base byte {off} concrete",
                    s.name()
                );
            }
            for off in [0u32, 1, 5, 6] {
                let b = m.mem.read_u8(e, entry + off);
                assert!(e.as_const(b).is_none(), "{} byte {off} symbolic", s.name());
            }
            // The recomputed attribute word depends on the symbolic bytes.
            assert!(e.as_const(m.segs[s as usize].cache.attrs).is_none());
        }
        // PDE flag byte: symbolic; PDE address bytes: concrete.
        let pde_flags = m.mem.read_u8(e, layout::PD_BASE);
        assert!(e.as_const(pde_flags).is_none(), "PDE flag byte symbolic");
        let pde_addr_byte = m.mem.read_u8(e, layout::PD_BASE + 2);
        assert!(
            e.as_const(pde_addr_byte).is_some(),
            "PDE address byte concrete"
        );
        // PTE flag byte likewise.
        let pte_flags = m.mem.read_u8(e, layout::PT_BASE + 4);
        assert!(e.as_const(pte_flags).is_none());
        // Unused physical memory: symbolic on demand.
        let unused = m.mem.read_u8(e, 0x0030_0000);
        assert!(
            e.as_const(unused).is_none(),
            "unused memory is on-demand symbolic"
        );
        // Test code bytes: concrete.
        let code = m.mem.read_u8(e, layout::CODE_BASE);
        assert!(e.as_const(code).is_some(), "code bytes are concrete");
    });
    assert!(r.complete);
}

/// The expected Figure 3 map, byte for byte: every tracked machine-state
/// location, whether exploration marks it symbolic (`S`) or concrete (`C`),
/// and the concrete value where there is one. GDT descriptor entries and
/// page-table entries render one letter per byte, low byte first.
const FIGURE3_GOLDEN_MAP: &str = "\
gpr.eax S
gpr.ecx S
gpr.edx S
gpr.ebx S
gpr.esp S
gpr.ebp S
gpr.esi S
gpr.edi S
eip C 0x00020000
eflags S
cr0 S
cr2 C 0x00000000
cr3.base C 0x00010000
cr3.flags S
cr4 S
gdtr.base C 0x00001000
gdtr.limit S
idtr.base C 0x00002000
idtr.limit S
msr.sysenter_cs S
msr.sysenter_esp S
msr.sysenter_eip S
seg.es.selector S
seg.es.attrs S
seg.cs.selector S
seg.cs.attrs S
seg.ss.selector S
seg.ss.attrs S
seg.ds.selector S
seg.ds.attrs S
seg.fs.selector S
seg.fs.attrs S
seg.gs.selector S
seg.gs.attrs S
gdt[1] SSCCCSSC
gdt[4] SSCCCSSC
gdt[5] SSCCCSSC
gdt[6] SSCCCSSC
gdt[7] SSCCCSSC
gdt[10] SSCCCSSC
pde[0] SCCC
pte[0] SCCC
pte[1] SCCC
pte[32] SCCC
mem[0x00300000] S
code[0x00020000] C 0xc7
";

/// Satellite golden test: the rendered symbolic/concrete map must match
/// [`FIGURE3_GOLDEN_MAP`] exactly. Any change to what exploration treats as
/// symbolic shows up here as a one-line diff.
#[test]
fn figure3_map_matches_golden_fixture() {
    use std::cell::RefCell;

    let baseline = baseline_snapshot();
    let mut exec = Executor::new();
    let summary = exec.summarize(
        &[(32, "lo"), (32, "hi"), (16, "sel"), (2, "cpl"), (2, "kind")],
        |e, f| pokemu::isa::translate::descriptor_checks(e, f[0], f[1], f[2], f[3], f[4]).to_vec(),
    );
    exec.register_summary(pokemu::isa::translate::DESC_SUMMARY_KEY, summary);
    let template = symstate::symbolic_memory_template(&mut exec, &baseline);
    let rendered = RefCell::new(String::new());
    let r = exec.explore(|e| {
        fn put(out: &mut String, name: &str, sc: Option<u64>) {
            match sc {
                Some(v) => out.push_str(&format!("{name} C {v:#010x}\n")),
                None => out.push_str(&format!("{name} S\n")),
            }
        }
        let mut m = symstate::symbolic_machine(e, &baseline, &template);
        let mut out = String::new();
        for rn in Gpr::ALL {
            put(
                &mut out,
                &format!("gpr.{}", rn.name()),
                e.as_const(m.gpr[rn as usize]),
            );
        }
        put(&mut out, "eip", Some(m.eip as u64));
        put(&mut out, "eflags", e.as_const(m.eflags));
        put(&mut out, "cr0", e.as_const(m.cr0));
        put(&mut out, "cr2", Some(m.cr2 as u64));
        put(&mut out, "cr3.base", Some(m.cr3_base as u64));
        put(&mut out, "cr3.flags", e.as_const(m.cr3_flags));
        put(&mut out, "cr4", e.as_const(m.cr4));
        put(&mut out, "gdtr.base", Some(m.gdtr.base as u64));
        put(&mut out, "gdtr.limit", e.as_const(m.gdtr.limit));
        put(&mut out, "idtr.base", Some(m.idtr.base as u64));
        put(&mut out, "idtr.limit", e.as_const(m.idtr.limit));
        put(&mut out, "msr.sysenter_cs", e.as_const(m.msrs.sysenter_cs));
        put(
            &mut out,
            "msr.sysenter_esp",
            e.as_const(m.msrs.sysenter_esp),
        );
        put(
            &mut out,
            "msr.sysenter_eip",
            e.as_const(m.msrs.sysenter_eip),
        );
        for s in pokemu::isa::Seg::ALL {
            put(
                &mut out,
                &format!("seg.{}.selector", s.name()),
                e.as_const(m.segs[s as usize].selector),
            );
            put(
                &mut out,
                &format!("seg.{}.attrs", s.name()),
                e.as_const(m.segs[s as usize].cache.attrs),
            );
        }
        // One letter per descriptor byte for every baseline GDT entry.
        let mut indexes: Vec<u16> = pokemu::isa::Seg::ALL
            .iter()
            .map(|&s| layout::gdt_index(s))
            .collect();
        indexes.sort_unstable();
        for idx in indexes {
            let entry = layout::GDT_BASE + idx as u32 * 8;
            let bytes: String = (0..8)
                .map(|off| {
                    let b = m.mem.read_u8(e, entry + off);
                    if e.as_const(b).is_some() {
                        'C'
                    } else {
                        'S'
                    }
                })
                .collect();
            out.push_str(&format!("gdt[{idx}] {bytes}\n"));
        }
        // Page-directory and page-table entries, one letter per byte.
        for (name, base) in [
            ("pde[0]", layout::PD_BASE),
            ("pte[0]", layout::PT_BASE),
            ("pte[1]", layout::PT_BASE + 4),
            ("pte[32]", layout::PT_BASE + 32 * 4),
        ] {
            let bytes: String = (0..4)
                .map(|off| {
                    let b = m.mem.read_u8(e, base + off);
                    if e.as_const(b).is_some() {
                        'C'
                    } else {
                        'S'
                    }
                })
                .collect();
            out.push_str(&format!("{name} {bytes}\n"));
        }
        let unused = m.mem.read_u8(e, 0x0030_0000);
        put(&mut out, "mem[0x00300000]", e.as_const(unused));
        let code = m.mem.read_u8(e, layout::CODE_BASE);
        match e.as_const(code) {
            Some(v) => out.push_str(&format!("code[{:#010x}] C {v:#04x}\n", layout::CODE_BASE)),
            None => out.push_str(&format!("code[{:#010x}] S\n", layout::CODE_BASE)),
        }
        *rendered.borrow_mut() = out;
    });
    assert!(r.complete, "machine construction must be branch-free");
    assert_eq!(r.paths.len(), 1, "machine construction must be single-path");
    let got = rendered.into_inner();
    assert_eq!(
        got, FIGURE3_GOLDEN_MAP,
        "Figure 3 symbolic/concrete map drifted from the golden fixture"
    );
}

#[test]
fn named_locations_round_trip_to_gadgets() {
    // Every symbolic location name converts to a state-initializer item.
    for (name, value) in [
        ("eax", 0x1234u64),
        ("esp", 0x2007dc),
        ("eflags", 0x246),
        ("sel_ss", 0x53),
        ("cr0", 0x8000_0011),
        ("cr4", 0x10),
        ("cr3_flags", 0x18),
        ("gdtr_limit", 0x7f),
        ("idtr_limit", 0xff),
        ("msr_sysenter_cs", 0x8),
        ("mem_00208055", 0x13),
    ] {
        assert!(
            symstate::state_item_of(name, value).is_some(),
            "{name} must map to a gadget"
        );
    }
    // Non-state variables (summary formals) do not.
    assert!(symstate::state_item_of("summary_lo_0", 1).is_none());
}
