//! F3: the symbolic machine-state map of the paper's Figure 3.
//!
//! Asserts exactly which parts of the machine state exploration marks
//! symbolic and which stay concrete.

use pokemu::explore::symstate;
use pokemu::harness::baseline_snapshot;
use pokemu::isa::state::Gpr;
use pokemu::symx::{Dom, Executor};
use pokemu::testgen::layout;

#[test]
fn figure3_symbolic_concrete_split() {
    let baseline = baseline_snapshot();
    let mut exec = Executor::new();
    // Register the descriptor-load summary, as state-space exploration does
    // (§3.3.2): machine construction is then branch-free.
    let summary = exec.summarize(
        &[(32, "lo"), (32, "hi"), (16, "sel"), (2, "cpl"), (2, "kind")],
        |e, f| pokemu::isa::translate::descriptor_checks(e, f[0], f[1], f[2], f[3], f[4]).to_vec(),
    );
    exec.register_summary(pokemu::isa::translate::DESC_SUMMARY_KEY, summary);
    let template = symstate::symbolic_memory_template(&mut exec, &baseline);
    let r = exec.explore(|e| {
        let mut m = symstate::symbolic_machine(e, &baseline, &template);

        // GPRs: symbolic.
        for rn in Gpr::ALL {
            assert!(e.as_const(m.gpr[rn as usize]).is_none(), "{} must be symbolic", rn.name());
        }
        // EIP: concrete (Fig. 3: "the instruction pointer needs to be
        // concrete").
        assert_eq!(m.eip, layout::CODE_BASE);
        // EFLAGS: symbolic as a whole...
        assert!(e.as_const(m.eflags).is_none());
        // CR3 base and table bases: concrete pointers.
        assert_eq!(m.cr3_base, layout::PD_BASE);
        assert_eq!(m.gdtr.base, layout::GDT_BASE);
        assert_eq!(m.idtr.base, layout::IDT_BASE);
        // ...but their limits are symbolic.
        assert!(e.as_const(m.gdtr.limit).is_none());
        // CR0/CR4 symbolic; CR2 concrete.
        assert!(e.as_const(m.cr0).is_none());
        assert!(e.as_const(m.cr4).is_none());
        // Segment selectors symbolic; descriptor-cache base derived from
        // concrete base bytes must fold to the baseline base (0).
        for s in pokemu::isa::Seg::ALL {
            assert!(e.as_const(m.segs[s as usize].selector).is_none());
            // The descriptor's *base* bytes (2, 3, 4, 7) are concrete in the
            // GDT (Fig. 3 leaves base addresses concrete); the limit and
            // attribute bytes (0, 1, 5, 6) are symbolic.
            let entry = layout::GDT_BASE + layout::gdt_index(s) as u32 * 8;
            for off in [2u32, 3, 4, 7] {
                let b = m.mem.read_u8(e, entry + off);
                assert!(e.as_const(b).is_some(), "{} base byte {off} concrete", s.name());
            }
            for off in [0u32, 1, 5, 6] {
                let b = m.mem.read_u8(e, entry + off);
                assert!(e.as_const(b).is_none(), "{} byte {off} symbolic", s.name());
            }
            // The recomputed attribute word depends on the symbolic bytes.
            assert!(e.as_const(m.segs[s as usize].cache.attrs).is_none());
        }
        // PDE flag byte: symbolic; PDE address bytes: concrete.
        let pde_flags = m.mem.read_u8(e, layout::PD_BASE);
        assert!(e.as_const(pde_flags).is_none(), "PDE flag byte symbolic");
        let pde_addr_byte = m.mem.read_u8(e, layout::PD_BASE + 2);
        assert!(e.as_const(pde_addr_byte).is_some(), "PDE address byte concrete");
        // PTE flag byte likewise.
        let pte_flags = m.mem.read_u8(e, layout::PT_BASE + 4);
        assert!(e.as_const(pte_flags).is_none());
        // Unused physical memory: symbolic on demand.
        let unused = m.mem.read_u8(e, 0x0030_0000);
        assert!(e.as_const(unused).is_none(), "unused memory is on-demand symbolic");
        // Test code bytes: concrete.
        let code = m.mem.read_u8(e, layout::CODE_BASE);
        assert!(e.as_const(code).is_some(), "code bytes are concrete");
    });
    assert!(r.complete);
}

#[test]
fn named_locations_round_trip_to_gadgets() {
    // Every symbolic location name converts to a state-initializer item.
    for (name, value) in [
        ("eax", 0x1234u64),
        ("esp", 0x2007dc),
        ("eflags", 0x246),
        ("sel_ss", 0x53),
        ("cr0", 0x8000_0011),
        ("cr4", 0x10),
        ("cr3_flags", 0x18),
        ("gdtr_limit", 0x7f),
        ("idtr_limit", 0xff),
        ("msr_sysenter_cs", 0x8),
        ("mem_00208055", 0x13),
    ] {
        assert!(
            symstate::state_item_of(name, value).is_some(),
            "{name} must map to a gadget"
        );
    }
    // Non-state variables (summary formals) do not.
    assert!(symstate::state_item_of("summary_lo_0", 1).is_none());
}
