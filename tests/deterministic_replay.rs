//! Determinism guarantees: the pipeline and the property-test harness
//! reproduce byte-for-byte identical results from the same seeds.
//!
//! Reproducibility is load-bearing for the methodology: the paper's counts
//! (§6) are only meaningful if re-running the experiment yields the same
//! numbers, and a reported property-test failure is only debuggable if the
//! seed replays the exact failing input.

use std::sync::{Mutex, MutexGuard, OnceLock};

use pokemu::harness::{run_cross_validation, run_random_baseline, PipelineConfig, RandomConfig};
use pokemu_rt::prop::{run_report, Gen, SEED_ENV, SIZE_ENV};

/// The metrics registry is process-global, so tests that run the pipeline
/// (and therefore bump `explore.*` / `solver.*` / `testgen.*` counters)
/// serialize on this lock; otherwise a concurrent test's counts would leak
/// into [`metrics_counters_are_byte_identical_across_thread_counts`]'s
/// snapshot windows.
fn metrics_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Two identical pipeline runs — including one with a different worker
/// count, so thread scheduling provably cannot leak into the results —
/// must agree on every counter, every cluster, and every solver-query
/// count.
#[test]
fn pipeline_counters_are_deterministic_across_runs_and_thread_counts() {
    let _metrics = metrics_lock();
    let config = |threads| PipelineConfig {
        first_byte: Some(0x80),
        max_paths_per_insn: 64,
        threads,
        ..PipelineConfig::default()
    };
    let a = run_cross_validation(config(2));
    let b = run_cross_validation(config(2));
    let c = run_cross_validation(config(4));
    for r in [&b, &c] {
        assert_eq!(a.candidates, r.candidates);
        assert_eq!(a.unique_instructions, r.unique_instructions);
        assert_eq!(a.fully_explored, r.fully_explored);
        assert_eq!(a.total_paths, r.total_paths);
        assert_eq!(a.lofi_differences, r.lofi_differences);
        assert_eq!(a.hifi_differences, r.hifi_differences);
        assert_eq!(a.lofi_filtered, r.lofi_filtered);
        assert_eq!(a.hifi_filtered, r.hifi_filtered);
        assert_eq!(a.lofi_clusters, r.lofi_clusters);
        assert_eq!(a.hifi_clusters, r.hifi_clusters);
        assert_eq!(a.stages.solver_queries, r.stages.solver_queries);
    }
    // The observability layer accounts for all the work: every explored
    // instruction passed through exactly one worker.
    let worker_items: usize = a.stages.workers.iter().map(|w| w.items).sum();
    assert_eq!(worker_items, a.unique_instructions);
    assert!(
        a.stages.solver_queries > 0,
        "state exploration must query the solver"
    );
}

/// The observability layer obeys the same determinism contract as the
/// pipeline results: every *counter* metric the run emits — path counts,
/// solver verdicts, fork/prune decisions, generated programs — must be
/// byte-for-byte identical whether the run used 1, 2, or 8 worker threads,
/// and whether span recording was on. Timers and latency histograms measure
/// wall time and are excluded; that split is exactly why the registry keeps
/// them in separate namespaces.
#[test]
fn metrics_counters_are_byte_identical_across_thread_counts() {
    let _metrics = metrics_lock();
    let run = |threads| {
        let before = pokemu_rt::metrics::snapshot();
        let cv = run_cross_validation(PipelineConfig {
            first_byte: Some(0x80),
            max_paths_per_insn: 64,
            threads,
            trace: true, // span recording must not perturb the counts
            ..PipelineConfig::default()
        });
        assert!(cv.total_paths > 0);
        let delta = pokemu_rt::metrics::snapshot().since(&before);
        delta
            .to_jsonl()
            .lines()
            .filter(|l| l.starts_with("{\"kind\":\"counter\""))
            .fold(String::new(), |mut acc, l| {
                acc.push_str(l);
                acc.push('\n');
                acc
            })
    };
    let one = run(1);
    let two = run(2);
    let eight = run(8);
    pokemu_rt::trace::set_enabled(false);
    for name in [
        "explore.insns",
        "explore.paths",
        "solver.queries",
        "symx.paths",
        "testgen.programs",
    ] {
        assert!(
            one.contains(&format!("\"name\":\"{name}\"")),
            "{name} missing from counter dump:\n{one}"
        );
    }
    assert_eq!(one, two, "1-thread vs 2-thread counter dumps differ");
    assert_eq!(one, eight, "1-thread vs 8-thread counter dumps differ");
}

/// The self-profiler must be a pure observer: running the identical
/// pipeline with profiling off on 2 threads and profiling *on* on 8
/// threads must produce byte-identical counter dumps. This extends the
/// byte-identity contract to the performance-observatory counters — the
/// per-origin solver billing, the lo-fi dispatch-loop attribution, and the
/// per-target run counts all live in the deterministic counter namespace,
/// while every wall-time sample the profiler takes lands in timers, which
/// the contract excludes by construction.
#[test]
fn profiler_does_not_perturb_counter_determinism() {
    let _metrics = metrics_lock();
    let run = |prof: bool, threads: usize| {
        pokemu_rt::prof::set_enabled(prof);
        let before = pokemu_rt::metrics::snapshot();
        let cv = run_cross_validation(PipelineConfig {
            first_byte: Some(0x80),
            max_paths_per_insn: 64,
            threads,
            ..PipelineConfig::default()
        });
        pokemu_rt::prof::set_enabled(false);
        assert!(cv.total_paths > 0);
        pokemu_rt::metrics::snapshot()
            .since(&before)
            .to_jsonl()
            .lines()
            .filter(|l| l.starts_with("{\"kind\":\"counter\""))
            .fold(String::new(), |mut acc, l| {
                acc.push_str(l);
                acc.push('\n');
                acc
            })
    };
    let off = run(false, 2);
    let on = run(true, 8);
    // The new attribution counters are part of the deterministic surface.
    for name in [
        "solver.queries.feasibility",
        "solver.queries.model",
        "lofi.tb_lookup.hits",
        "lofi.insns",
        "target.lofi.runs",
        "target.hifi.runs",
    ] {
        assert!(
            off.contains(&format!("\"name\":\"{name}\"")),
            "{name} missing from counter dump:\n{off}"
        );
    }
    assert_eq!(
        off, on,
        "profiling (or the thread count under it) changed a counter"
    );
    // Drain the profile the 8-thread run accumulated so later prof tests
    // in the process start clean.
    let _ = pokemu_rt::prof::take();
}

/// Coverage bitmaps and the manifest's deviation list obey the same
/// thread-count-invariance contract as the counters: the accounting the CI
/// gate compares against a committed baseline must not depend on worker
/// scheduling. Coverage maps are *cumulative* (set-only bits), so the
/// snapshot after each of three identical runs — at 1, 2, and 8 worker
/// threads — must be byte-identical, and so must each run's full
/// [`DeviationRecord`] list (name, instruction bytes, path-id, cause, and
/// components per deviation).
#[test]
fn coverage_and_deviations_are_thread_count_invariant() {
    let _metrics = metrics_lock();
    pokemu_rt::coverage::set_enabled(true);
    let run = |threads| {
        let cv = run_cross_validation(PipelineConfig {
            first_byte: Some(0x80),
            max_paths_per_insn: 64,
            threads,
            ..PipelineConfig::default()
        });
        (cv, pokemu_rt::coverage::snapshot())
    };
    let (cv1, cov1) = run(1);
    let (cv2, cov2) = run(2);
    let (cv8, cov8) = run(8);

    // The run produced real deviations with provenance attached.
    assert!(!cv1.deviations.is_empty(), "0x80 must deviate on Lo-Fi");
    assert_eq!(cv1.deviations.len(), cv1.lofi_filtered + cv1.hifi_filtered);
    assert!(
        cv1.deviations.iter().all(|d| !d.insn_hex.is_empty()),
        "every deviation must carry its instruction bytes"
    );
    assert!(
        cv1.deviations.iter().any(|d| d.path_id != 0),
        "explored-path deviations must carry non-zero path ids"
    );

    // Byte-identical deviation lists across thread counts...
    assert_eq!(cv1.deviations, cv2.deviations, "1 vs 2 worker threads");
    assert_eq!(cv1.deviations, cv8.deviations, "1 vs 8 worker threads");

    // ...and byte-identical coverage bitmaps, including the JSONL export
    // the manifest and baseline diff are built from.
    for name in [
        "coverage.opcode",
        "coverage.path",
        "coverage.uop",
        "coverage.exception",
    ] {
        let m = cov1.map(name).unwrap_or_else(|| panic!("{name} missing"));
        assert!(m.set_count() > 0, "{name} must be non-empty");
    }
    assert_eq!(cov1, cov2, "1 vs 2 worker threads coverage");
    assert_eq!(cov1, cov8, "1 vs 8 worker threads coverage");
    assert_eq!(cov1.to_jsonl(), cov8.to_jsonl());
}

/// The chained execution layer (block chaining + inline lookup cache +
/// superblocks + IR-skip, DESIGN.md §11) is a pure execution-strategy
/// change: with chaining forced off and on, the pipeline must produce
/// byte-identical deviation lists, conformance renders (snapshots, path
/// ids, code hashes), and all four coverage bitmaps, at 1, 2, and 8
/// harness threads.
#[test]
fn chained_execution_layer_is_observably_invisible() {
    use pokemu::harness::conformance::{build_corpus, program_json, run_conformance};

    let _metrics = metrics_lock();
    pokemu_rt::coverage::set_enabled(true);
    let sweep = || {
        let corpus = build_corpus();
        [1, 2, 8].map(|threads| {
            let cv = run_cross_validation(PipelineConfig {
                first_byte: Some(0x80),
                max_paths_per_insn: 64,
                threads,
                ..PipelineConfig::default()
            });
            let conf = run_conformance(&corpus, threads)
                .results
                .iter()
                .map(program_json)
                .collect::<Vec<_>>()
                .join("\n");
            (cv.deviations, conf, pokemu_rt::coverage::snapshot())
        })
    };
    // Chain OFF first: coverage bits are sticky and cumulative across the
    // process, so running the off sweep first means any extra bit the
    // chained layer would set shows up as an off/on snapshot difference.
    pokemu::lofi::set_chain_enabled(false);
    let off = sweep();
    pokemu::lofi::set_chain_enabled(true);
    let on = sweep();
    pokemu::lofi::clear_chain_override();

    let (dev0, conf0, cov0) = &off[0];
    assert!(!dev0.is_empty(), "0x80 must deviate on Lo-Fi");
    for (i, (dev, conf, cov)) in off.iter().chain(on.iter()).enumerate() {
        let label = ["off/1t", "off/2t", "off/8t", "on/1t", "on/2t", "on/8t"][i];
        assert_eq!(dev0, dev, "deviation lists differ: off/1t vs {label}");
        assert_eq!(conf0, conf, "conformance renders differ: off/1t vs {label}");
        assert_eq!(cov0, cov, "coverage bitmaps differ: off/1t vs {label}");
    }
}

/// The random baseline is a function of its seed.
#[test]
fn random_baseline_is_a_function_of_its_seed() {
    let _metrics = metrics_lock();
    let config = RandomConfig {
        tests: 40,
        seed: 0x5EED5EED,
        ..RandomConfig::default()
    };
    let a = run_random_baseline(config);
    let b = run_random_baseline(config);
    assert_eq!(a.tests, b.tests);
    assert_eq!(a.lofi_differences, b.lofi_differences);
    assert_eq!(a.lofi_clusters, b.lofi_clusters);
}

/// Chained test programs obey the replay contract: a chain whose segment
/// picks are drawn from an `rt::prop` generator regenerates *byte-for-byte
/// identical* code when the failure is replayed through `POKEMU_PROP_SEED`
/// / `POKEMU_PROP_SIZE` — the chainer itself adds no nondeterminism on top
/// of the seed.
#[test]
fn prop_seed_replays_chained_programs_byte_for_byte() {
    use pokemu::explore::{explore_state_space, to_chain_segments, StateSpaceConfig};
    use pokemu::testgen::TestProgram;

    let _metrics = metrics_lock();
    let baseline = pokemu::harness::baseline_snapshot();
    let config = StateSpaceConfig {
        max_paths: 64,
        ..StateSpaceConfig::default()
    };
    // A pool of chainable segments from three small families.
    let mut segments = Vec::new();
    for (key, insn) in [
        ("clc", &[0xf8][..]),
        ("jz", &[0x74, 0x02][..]),
        ("push", &[0x50][..]),
    ] {
        let space = explore_state_space(insn, &baseline, config);
        segments.extend(to_chain_segments(&space, key));
    }
    assert!(segments.len() >= 4);

    let built: Mutex<(Vec<u8>, u64)> = Mutex::new((Vec::new(), 0));
    let property = |g: &mut Gen| {
        let k = g.range(2..=4usize);
        let picks: Vec<_> = (0..k).map(|_| g.choose(&segments).clone()).collect();
        let prog = TestProgram::chain("prop/chain".into(), &picks).expect("chains assemble");
        *built.lock().unwrap() = (prog.code.clone(), prog.path_id);
        panic!("forced failure to capture the seed");
    };

    let fail = run_report("chain_replay", 16, &property).expect_err("property must fail");
    let first = built.lock().unwrap().clone();
    assert!(!first.0.is_empty());

    std::env::set_var(SEED_ENV, format!("{:#x}", fail.seed));
    std::env::set_var(SIZE_ENV, fail.size.to_string());
    let replayed = run_report("chain_replay", 16, &property);
    std::env::remove_var(SEED_ENV);
    std::env::remove_var(SIZE_ENV);
    replayed.expect_err("replay must reproduce the failure");

    let second = built.lock().unwrap().clone();
    assert_eq!(
        first.0, second.0,
        "replayed chain code must be byte-identical"
    );
    assert_eq!(first.1, second.1, "replayed chain path id must match");
}

/// The conformance corpus obeys the same thread-count-invariance contract
/// as the pipeline: the rendered baseline documents — chain path ids, code
/// hashes, segment provenance, and deviations — are byte-identical whether
/// the corpus ran on 1, 2, or 8 worker threads.
#[test]
fn conformance_corpus_results_are_thread_count_invariant() {
    use pokemu::harness::conformance::{build_corpus, program_json, run_conformance};

    let _metrics = metrics_lock();
    let corpus = build_corpus();
    let render = |threads| {
        let run = run_conformance(&corpus, threads);
        assert!(run.quarantined.is_empty(), "{threads} threads");
        assert_eq!(run.results.len(), corpus.len(), "{threads} threads");
        run.results
            .iter()
            .map(program_json)
            .collect::<Vec<_>>()
            .join("\n")
    };
    let one = render(1);
    let two = render(2);
    let eight = render(8);
    assert_eq!(one, two, "1 vs 2 worker threads");
    assert_eq!(one, eight, "1 vs 8 worker threads");
}

/// Forces an `rt::prop` failure, then replays it via `POKEMU_PROP_SEED` /
/// `POKEMU_PROP_SIZE` and checks the generator draws byte-for-byte the same
/// input that failed.
#[test]
fn prop_seed_env_replays_the_failing_case_byte_for_byte() {
    let drawn: Mutex<Vec<u8>> = Mutex::new(Vec::new());
    let property = |g: &mut Gen| {
        let v = g.bytes(0, 64);
        *drawn.lock().unwrap() = v.clone();
        assert!(v.len() < 5, "forced failure: {} bytes", v.len());
    };

    // First run: find and shrink a failure (no env vars involved).
    let fail = run_report("forced_failure", 64, &property).expect_err("property must fail");

    // The reported (seed, size) pair must regenerate the counterexample.
    let mut g = Gen::new(fail.seed, fail.size);
    let expected = g.bytes(0, 64);
    assert!(
        expected.len() >= 5,
        "reported (seed, size) must generate a failing input"
    );

    // Replay through the env-var path, as a user following the panic
    // message would.
    std::env::set_var(SEED_ENV, format!("{:#x}", fail.seed));
    std::env::set_var(SIZE_ENV, fail.size.to_string());
    let replayed = run_report("forced_failure", 64, &property);
    std::env::remove_var(SEED_ENV);
    std::env::remove_var(SIZE_ENV);

    let replay_fail = replayed.expect_err("replay must reproduce the failure");
    assert_eq!(replay_fail.seed, fail.seed);
    assert_eq!(replay_fail.size, fail.size);
    assert_eq!(
        *drawn.lock().unwrap(),
        expected,
        "replay must draw identical bytes"
    );
}
