//! The chained conformance corpus (DESIGN.md §9): corpus shape, the
//! committed-baseline gate on HEAD, and the headline property that chaining
//! exists to prove — a deviation class (descriptor accessed-bit
//! accumulation) that multi-instruction programs expose and single-shot
//! programs *cannot*.

use std::sync::OnceLock;

use pokemu::harness::conformance::{
    build_corpus, check_conformance, find_roms_dir, run_conformance, ConformanceRun,
    CONFORMANCE_FIDELITY,
};
use pokemu::harness::{compare, run_on_all_targets};
use pokemu::testgen::{gadgets::sel, layout, StateItem, TestProgram, TestState};
use pokemu_isa::state::{Gpr, Seg};

/// Corpus construction explores fifteen instruction families; build it (and
/// its three-target run) once per test binary.
fn corpus_run() -> &'static (Vec<TestProgram>, ConformanceRun) {
    static RUN: OnceLock<(Vec<TestProgram>, ConformanceRun)> = OnceLock::new();
    RUN.get_or_init(|| {
        let corpus = build_corpus();
        let run = run_conformance(&corpus, 2);
        (corpus, run)
    })
}

/// The corpus is big enough to gate on (≥ 24 chained programs, every one
/// multi-segment, unique names) and spans several root-cause classes.
#[test]
fn corpus_spans_deviation_classes() {
    let (corpus, run) = corpus_run();
    assert!(corpus.len() >= 24, "only {} programs", corpus.len());
    assert_eq!(run.results.len(), corpus.len());
    assert!(run.quarantined.is_empty());

    let mut names = std::collections::BTreeSet::new();
    for prog in corpus {
        assert!(
            prog.segments.len() >= 2,
            "{} is not a chain ({} segments)",
            prog.name,
            prog.segments.len()
        );
        assert!(prog.path_id != 0, "{} has no chain path id", prog.name);
        assert!(names.insert(prog.name.clone()), "duplicate {}", prog.name);
    }

    let causes: std::collections::BTreeSet<&str> = run
        .results
        .iter()
        .flat_map(|r| r.deviations.iter().map(|d| d.cause.as_str()))
        .collect();
    assert!(
        causes.len() >= 4,
        "corpus must span several deviation classes, got {causes:?}"
    );
    assert!(
        causes.contains("descriptor accessed-flag maintenance"),
        "the directed chains must expose accessed-bit write-back: {causes:?}"
    );
    // The corpus carries negative evidence too: programs the targets agree
    // on, so a Lo-Fi regression that *adds* deviations is caught.
    assert!(
        run.results.iter().any(|r| r.deviations.is_empty()),
        "corpus needs conformant programs as controls"
    );
    let control = run
        .results
        .iter()
        .find(|r| r.name == "chain/reload-baseline")
        .expect("control chain present");
    assert!(
        control.deviations.is_empty(),
        "reloading pre-accessed descriptors must deviate nowhere: {:?}",
        control.deviations
    );
}

/// The committed `tests/roms/` baselines match HEAD exactly. This is the
/// in-tree mirror of the `pokemu-report conformance` CI gate: any drift in
/// generation (code bytes, path ids, segment provenance) or behavior (new
/// or vanished deviations) fails here with the violating programs named.
#[test]
fn committed_baselines_match_head() {
    let (_, run) = corpus_run();
    let roms = find_roms_dir().expect("tests/roms/ must be committed");
    let violations = check_conformance(&roms, &run.results).expect("baseline dir readable");
    assert!(
        violations.is_empty(),
        "conformance drift — regenerate with `pokemu-report conformance --write` \
         if intentional:\n{}",
        violations
            .iter()
            .map(|v| format!("  {}: {}", v.program, v.reason))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The de-access segment: `mov byte [gdt+ds*8+5], 0x92` rewrites the DS
/// descriptor's attribute byte to its non-accessed encoding.
fn deaccess_ds_insn() -> Vec<u8> {
    let addr = layout::GDT_BASE + layout::gdt_index(Seg::Ds) as u32 * 8 + 5;
    let mut insn = vec![0xc6, 0x05];
    insn.extend_from_slice(&addr.to_le_bytes());
    insn.push(0x92);
    insn
}

/// The headline acceptance property: accessed-bit accumulation is only
/// observable in a *sequence*. Both directed segments, run single-shot from
/// the baseline, deviate on no target — the baseline GDT commits every
/// descriptor pre-accessed, so a lone reload writes nothing back and a lone
/// de-access is just a store every target agrees on. Chained, the same two
/// instructions make hardware (and Hi-Fi) write the accessed bit back into
/// the de-accessed descriptor while the QEMU-like Lo-Fi profile does not.
#[test]
fn accessed_bit_deviation_requires_chaining() {
    // Single-shot 1: the de-access store alone.
    let store = TestProgram::build(
        "single/deaccess-ds".into(),
        TestState::default(),
        &deaccess_ds_insn(),
    )
    .unwrap();
    let case = run_on_all_targets(&store, CONFORMANCE_FIDELITY);
    assert!(
        compare(&case.hardware, &case.lofi, &store.test_insn).is_none(),
        "a lone descriptor store deviates nowhere"
    );
    assert!(compare(&case.hardware, &case.hifi, &store.test_insn).is_none());

    // Single-shot 2: the reload alone (descriptor still pre-accessed).
    let reload = TestProgram::build(
        "single/reload-ds".into(),
        TestState {
            items: vec![StateItem::Gpr(
                Gpr::Eax,
                sel(layout::gdt_index(Seg::Ds)) as u32,
            )],
        },
        &[0x8e, 0xd8],
    )
    .unwrap();
    let case = run_on_all_targets(&reload, CONFORMANCE_FIDELITY);
    assert!(
        compare(&case.hardware, &case.lofi, &reload.test_insn).is_none(),
        "reloading a pre-accessed descriptor deviates nowhere"
    );
    assert!(compare(&case.hardware, &case.hifi, &reload.test_insn).is_none());

    // Chained: the corpus program stitching exactly these two paths.
    let (_, run) = corpus_run();
    let chained = run
        .results
        .iter()
        .find(|r| r.name == "chain/deaccess-ds")
        .expect("directed chain in corpus");
    assert!(
        chained
            .deviations
            .iter()
            .any(|d| d.target == "lofi" && d.cause == "descriptor accessed-flag maintenance"),
        "the chained program must expose the accessed-bit deviation: {:?}",
        chained.deviations
    );
    // Hi-Fi maintains accessed bits like hardware, so the chain stays
    // clean there — the deviation really is the Lo-Fi shortcut.
    assert!(
        chained.deviations.iter().all(|d| d.target != "hifi"),
        "{:?}",
        chained.deviations
    );
}

/// Segment provenance points at real offsets: each recorded instruction is
/// literally at its `insn_offset` inside the generated code, in order.
#[test]
fn segment_offsets_index_the_real_instruction_bytes() {
    let (corpus, _) = corpus_run();
    for prog in corpus {
        let mut last = 0;
        for seg in &prog.segments {
            let off = seg.insn_offset as usize;
            assert!(off >= last, "{}: segment offsets must ascend", prog.name);
            assert_eq!(
                &prog.code[off..off + seg.insn.len()],
                &seg.insn[..],
                "{}: segment {} bytes not at recorded offset",
                prog.name,
                seg.name
            );
            last = off;
        }
    }
}
